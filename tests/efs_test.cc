// Tests for the Eden File System (paper section 5): transactions, immutable
// versions, replication, and crash recovery of prepared transactions.
#include <gtest/gtest.h>

#include "src/efs/client.h"
#include "src/efs/file_store.h"
#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

class EfsFixture : public ::testing::Test {
 protected:
  EfsFixture() {
    RegisterStandardTypes(system_);
    RegisterEfsTypes(system_);
    system_.AddNodes(4);
  }

  // Creates one efs.store object on each of the first `replicas` nodes.
  std::vector<Capability> MakeStores(size_t replicas) {
    std::vector<Capability> stores;
    for (size_t i = 0; i < replicas; i++) {
      auto cap = system_.node(i).CreateObject("efs.store", Representation{});
      EXPECT_TRUE(cap.ok());
      stores.push_back(*cap);
    }
    return stores;
  }

  EdenSystem system_;
};

TEST_F(EfsFixture, CreateWriteRead) {
  EfsClient client(system_.node(3), MakeStores(1));
  ASSERT_TRUE(system_.Await(client.CreateFile("/etc/motd")).ok());

  auto txn = client.Begin();
  txn.Write("/etc/motd", ToBytes("welcome to eden"));
  Status status = system_.Await(txn.Commit());
  ASSERT_TRUE(status.ok()) << status;

  auto content = system_.Await(client.Read("/etc/motd"));
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(ToString(*content), "welcome to eden");
}

TEST_F(EfsFixture, VersionsAreImmutableAndAccumulate) {
  EfsClient client(system_.node(3), MakeStores(1));
  ASSERT_TRUE(system_.Await(client.CreateFile("/doc")).ok());

  for (int v = 1; v <= 3; v++) {
    auto txn = client.Begin();
    txn.Write("/doc", ToBytes("draft " + std::to_string(v)));
    ASSERT_TRUE(system_.Await(txn.Commit()).ok());
  }

  auto latest = system_.Await(client.Latest("/doc"));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 3u);
  // Every historical version remains readable.
  for (uint64_t v = 1; v <= 3; v++) {
    auto content = system_.Await(client.Read("/doc", v));
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(ToString(*content), "draft " + std::to_string(v));
  }
}

TEST_F(EfsFixture, ReadOfMissingFileOrVersionFails) {
  EfsClient client(system_.node(3), MakeStores(1));
  auto missing = system_.Await(client.Read("/nope"));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(system_.Await(client.CreateFile("/empty")).ok());
  auto empty = system_.Await(client.Read("/empty"));
  EXPECT_EQ(empty.status().code(), StatusCode::kNotFound);
  auto bad_version = system_.Await(client.Read("/empty", 7));
  EXPECT_EQ(bad_version.status().code(), StatusCode::kNotFound);
}

TEST_F(EfsFixture, CreateIsExclusiveAtTheStoreButIdempotentAtTheClient) {
  std::vector<Capability> stores = MakeStores(1);
  NodeKernel& driver = system_.node(3);
  ASSERT_TRUE(system_.Await(
      driver.Invoke(stores[0], "create", InvokeArgs{}.AddString("/x"))).ok());
  InvokeResult duplicate = system_.Await(
      driver.Invoke(stores[0], "create", InvokeArgs{}.AddString("/x")));
  EXPECT_EQ(duplicate.status.code(), StatusCode::kAlreadyExists);
  // The client treats AlreadyExists as success (idempotent creation).
  EfsClient client(driver, stores);
  EXPECT_TRUE(system_.Await(client.CreateFile("/x")).ok());
}

TEST_F(EfsFixture, ConflictingTransactionsFirstPreparerWins) {
  EfsClient client(system_.node(3), MakeStores(1));
  ASSERT_TRUE(system_.Await(client.CreateFile("/contested")).ok());

  // Both transactions read latest=0, then race to prepare.
  auto txn1 = client.Begin();
  auto txn2 = client.Begin();
  txn1.Write("/contested", ToBytes("from txn1"));
  txn2.Write("/contested", ToBytes("from txn2"));

  Future<Status> commit1 = txn1.Commit();
  Future<Status> commit2 = txn2.Commit();
  Status s1 = system_.Await(std::move(commit1));
  Status s2 = system_.Await(std::move(commit2));

  // Exactly one commits; the other aborts with kAborted.
  EXPECT_NE(s1.ok(), s2.ok());
  Status& loser = s1.ok() ? s2 : s1;
  EXPECT_EQ(loser.code(), StatusCode::kAborted);

  auto latest = system_.Await(client.Latest("/contested"));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 1u);
  auto content = system_.Await(client.Read("/contested"));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(ToString(*content), s1.ok() ? "from txn1" : "from txn2");
}

TEST_F(EfsFixture, MultiFileTransactionIsAtomic) {
  EfsClient client(system_.node(3), MakeStores(1));
  ASSERT_TRUE(system_.Await(client.CreateFile("/a")).ok());
  ASSERT_TRUE(system_.Await(client.CreateFile("/b")).ok());

  auto txn = client.Begin();
  txn.Write("/a", ToBytes("alpha")).Write("/b", ToBytes("beta"));
  ASSERT_TRUE(system_.Await(txn.Commit()).ok());

  EXPECT_EQ(ToString(*system_.Await(client.Read("/a"))), "alpha");
  EXPECT_EQ(ToString(*system_.Await(client.Read("/b"))), "beta");

  // A transaction writing to a missing file aborts entirely: /a unchanged.
  auto bad = client.Begin();
  bad.Write("/a", ToBytes("alpha2")).Write("/missing", ToBytes("x"));
  Status status = system_.Await(bad.Commit());
  EXPECT_FALSE(status.ok());
  auto latest = system_.Await(client.Latest("/a"));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 1u);
}

TEST_F(EfsFixture, ReplicatedCommitReachesAllReplicas) {
  std::vector<Capability> stores = MakeStores(3);
  EfsClient client(system_.node(3), stores);
  ASSERT_TRUE(system_.Await(client.CreateFile("/rep")).ok());
  auto txn = client.Begin();
  txn.Write("/rep", ToBytes("replicated"));
  ASSERT_TRUE(system_.Await(txn.Commit()).ok());

  // Ask each store directly: all hold version 1.
  for (const Capability& store : stores) {
    InvokeResult result = system_.Await(system_.node(3).Invoke(
        store, "read", InvokeArgs{}.AddString("/rep").AddU64(1)));
    ASSERT_TRUE(result.ok()) << result.status;
    EXPECT_EQ(ToString(result.results.BytesAt(0).value()), "replicated");
  }
}

TEST_F(EfsFixture, ReadsFailOverWhenAReplicaDies) {
  std::vector<Capability> stores = MakeStores(3);
  EfsClient client(system_.node(3), stores);
  ASSERT_TRUE(system_.Await(client.CreateFile("/ha")).ok());
  auto txn = client.Begin();
  txn.Write("/ha", ToBytes("still here"));
  ASSERT_TRUE(system_.Await(txn.Commit()).ok());

  // Kill two of three replica hosts; reads still succeed.
  system_.node(0).FailNode();
  system_.node(1).FailNode();
  auto content = system_.Await(client.Read("/ha"));
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(ToString(*content), "still here");
}

TEST_F(EfsFixture, PreparedTransactionSurvivesStoreCrash) {
  // 2PC durability: prepare, crash the store node, commit after restart.
  std::vector<Capability> stores = MakeStores(1);
  NodeKernel& driver = system_.node(3);
  ASSERT_TRUE(system_.Await(
      driver.Invoke(stores[0], "create", InvokeArgs{}.AddString("/logged"))).ok());

  uint64_t txn_id = 777;
  InvokeResult prepared = system_.Await(driver.Invoke(
      stores[0], "prepare",
      InvokeArgs{}.AddU64(txn_id).AddString("/logged").AddU64(0).AddString(
          "durable write")));
  ASSERT_TRUE(prepared.ok()) << prepared.status;

  system_.node(0).FailNode();
  system_.node(0).RestartNode();

  // The staging survived in the checkpoint; commit applies it.
  InvokeResult committed = system_.Await(
      driver.Invoke(stores[0], "commit", InvokeArgs{}.AddU64(txn_id)));
  ASSERT_TRUE(committed.ok()) << committed.status;
  EXPECT_EQ(committed.results.U64At(0).value(), 1u);

  InvokeResult read = system_.Await(driver.Invoke(
      stores[0], "read", InvokeArgs{}.AddString("/logged").AddU64(0)));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(read.results.BytesAt(0).value()), "durable write");
}

TEST_F(EfsFixture, AbortDropsStagedWrites) {
  std::vector<Capability> stores = MakeStores(1);
  NodeKernel& driver = system_.node(3);
  ASSERT_TRUE(system_.Await(
      driver.Invoke(stores[0], "create", InvokeArgs{}.AddString("/tmp"))).ok());
  uint64_t txn_id = 888;
  ASSERT_TRUE(system_.Await(driver.Invoke(
      stores[0], "prepare",
      InvokeArgs{}.AddU64(txn_id).AddString("/tmp").AddU64(0).AddString("x")))
                  .ok());
  ASSERT_TRUE(system_.Await(
      driver.Invoke(stores[0], "abort", InvokeArgs{}.AddU64(txn_id))).ok());
  // Commit after abort applies nothing.
  InvokeResult committed = system_.Await(
      driver.Invoke(stores[0], "commit", InvokeArgs{}.AddU64(txn_id)));
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.results.U64At(0).value(), 0u);
  InvokeResult latest = system_.Await(
      driver.Invoke(stores[0], "latest", InvokeArgs{}.AddString("/tmp")));
  EXPECT_EQ(latest.results.U64At(0).value(), 0u);
}

TEST_F(EfsFixture, ListReturnsAllFiles) {
  EfsClient client(system_.node(3), MakeStores(1));
  ASSERT_TRUE(system_.Await(client.CreateFile("/one")).ok());
  ASSERT_TRUE(system_.Await(client.CreateFile("/two")).ok());
  auto listing = system_.Await(client.List());
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 2u);
}

TEST_F(EfsFixture, PruneRetiresOldVersionsButKeepsNumbering) {
  std::vector<Capability> stores = MakeStores(1);
  NodeKernel& driver = system_.node(3);
  EfsClient client(driver, stores);
  ASSERT_TRUE(system_.Await(client.CreateFile("/log")).ok());
  for (int v = 1; v <= 5; v++) {
    auto txn = client.Begin();
    txn.Write("/log", ToBytes("v" + std::to_string(v)));
    ASSERT_TRUE(system_.Await(txn.Commit()).ok());
  }
  InvokeResult pruned = system_.Await(driver.Invoke(
      stores[0], "prune", InvokeArgs{}.AddString("/log").AddU64(2)));
  ASSERT_TRUE(pruned.ok()) << pruned.status;
  EXPECT_EQ(pruned.results.U64At(0).value(), 3u);

  // Latest version numbering is unchanged; old content is gone, new remains.
  auto latest = system_.Await(client.Latest("/log"));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 5u);
  EXPECT_EQ(system_.Await(client.Read("/log", 1)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ToString(*system_.Await(client.Read("/log", 4))), "v4");
  EXPECT_EQ(ToString(*system_.Await(client.Read("/log", 5))), "v5");
  // Pruning is idempotent.
  pruned = system_.Await(driver.Invoke(
      stores[0], "prune", InvokeArgs{}.AddString("/log").AddU64(2)));
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned.results.U64At(0).value(), 0u);
}

TEST_F(EfsFixture, StatsTrackOutcomes) {
  EfsClient client(system_.node(3), MakeStores(1));
  ASSERT_TRUE(system_.Await(client.CreateFile("/s")).ok());
  auto good = client.Begin();
  good.Write("/s", ToBytes("v1"));
  ASSERT_TRUE(system_.Await(good.Commit()).ok());
  auto bad = client.Begin();
  bad.Write("/does-not-exist", ToBytes("x"));
  EXPECT_FALSE(system_.Await(bad.Commit()).ok());
  EXPECT_EQ(client.stats().transactions_committed, 1u);
  EXPECT_EQ(client.stats().transactions_aborted, 1u);
}

}  // namespace
}  // namespace eden
