// Lease-based read caching of hot mutable objects (DESIGN.md §15).
//
// The home of an active object grants time-bounded read leases alongside
// read-class replies; holders serve later read-class invocations from a
// local cached representation with zero network round-trips. Write-class
// invocations route to the home, which recalls (or waits out) every
// outstanding lease before mutating — so a committed write is never
// concurrent with a lease that could serve the pre-write state. Crashes and
// partitions bound staleness by the lease term instead of breaking safety.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "tests/test_util.h"

namespace eden {
namespace {

SystemConfig LeaseConfig(uint64_t seed = 1) {
  SystemConfig config;
  config.seed = seed;
  config.kernel.lease_reads = true;
  return config;
}

class LeaseFixture : public ::testing::Test {
 protected:
  LeaseFixture() : system_(LeaseConfig()) {
    system_.RegisterType(MakeCounterType());
    system_.AddNodes(5);
  }

  InvokeResult Call(NodeKernel& from, const Capability& cap,
                    const std::string& op, InvokeArgs args = {}) {
    return system_.Await(from.Invoke(cap, op, std::move(args)));
  }

  EdenSystem system_;
};

TEST_F(LeaseFixture, RemoteReadGrantsLeaseAndLaterReadsAreLocal) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep(7));
  ASSERT_TRUE(cap.ok());

  // The first remote read pays the round-trip and triggers a grant.
  InvokeResult result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 7u);
  system_.RunFor(Milliseconds(5));  // let the grant land
  EXPECT_GE(system_.node(0).stats().lease_grants, 1u);

  // Subsequent reads dispatch into the leased copy: no remote traffic.
  uint64_t remote_before = system_.node(1).stats().invocations_remote;
  uint64_t local_before = system_.node(1).stats().lease_local_reads;
  for (int i = 0; i < 3; i++) {
    result = Call(system_.node(1), *cap, "read");
    ASSERT_TRUE(result.ok()) << result.status;
    EXPECT_EQ(result.results.U64At(0).value(), 7u);
  }
  EXPECT_EQ(system_.node(1).stats().invocations_remote, remote_before);
  EXPECT_EQ(system_.node(1).stats().lease_local_reads, local_before + 3);

  // A leased copy never serves write-class invocations: the increment
  // routes to the home and commits there.
  result = Call(system_.node(1), *cap, "increment");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 8u);
}

TEST_F(LeaseFixture, ReadNearExpiryRoutesHomeAndRenewalRidesTheReply) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep(3));
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(1), *cap, "read").ok());
  system_.RunFor(Milliseconds(5));
  ASSERT_GE(system_.node(0).stats().lease_grants, 1u);

  // Advance to within the renewal margin of expiry: the next read goes to
  // the home (so it cannot observe a post-expiry stale copy) and the reply
  // piggybacks an extension.
  const KernelConfig& kc = system_.config().kernel;
  system_.RunFor(kc.lease_duration - kc.lease_renew_margin);
  uint64_t renewals_before = system_.node(0).stats().lease_renewals;
  InvokeResult result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_GT(system_.node(0).stats().lease_renewals, renewals_before);

  // The extension re-arms the local fast path without a new grant message.
  uint64_t local_before = system_.node(1).stats().lease_local_reads;
  result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 3u);
  EXPECT_GT(system_.node(1).stats().lease_local_reads, local_before);
}

TEST_F(LeaseFixture, WriteRecallsEveryHolderAndNoStaleReadSurvivesIt) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "increment").ok());  // value 1

  // Two distinct holders.
  ASSERT_TRUE(Call(system_.node(1), *cap, "read").ok());
  ASSERT_TRUE(Call(system_.node(2), *cap, "read").ok());
  system_.RunFor(Milliseconds(5));
  ASSERT_GE(system_.node(0).stats().lease_grants, 2u);

  // The write blocks on the recall round, not on lease expiry: both holders
  // release promptly, so the commit lands within a few round-trips.
  SimTime before = system_.sim().now();
  uint64_t recalls_before = system_.node(0).stats().lease_recalls;
  InvokeResult result = Call(system_.node(3), *cap, "increment");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 2u);
  EXPECT_GT(system_.node(0).stats().lease_recalls, recalls_before);
  EXPECT_LT(system_.sim().now() - before, Milliseconds(100));

  // After the commit the recalled copies are gone: both ex-holders observe
  // the new value (their reads route to the home and re-acquire).
  result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 2u);
  result = Call(system_.node(2), *cap, "read");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 2u);
}

TEST_F(LeaseFixture, MoveWaitsOutLeasesAndHoldersNeverServeTheOldHome) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep(5));
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(1), *cap, "read").ok());
  system_.RunFor(Milliseconds(5));
  ASSERT_GE(system_.node(0).stats().lease_grants, 1u);

  auto object = system_.node(0).FindActive(cap->name());
  ASSERT_NE(object, nullptr);
  uint64_t recalls_before = system_.node(0).stats().lease_recalls;
  Status moved = system_.Await(
      system_.node(0).MoveObject(object, system_.node(2).station()));
  ASSERT_TRUE(moved.ok()) << moved;
  EXPECT_GT(system_.node(0).stats().lease_recalls, recalls_before);
  system_.RunFor(Milliseconds(10));
  EXPECT_TRUE(system_.node(2).IsActive(cap->name()));

  // The recall invalidated the holder's copy; its next read finds the new
  // residence and the state that travelled with it.
  InvokeResult result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 5u);
  // And the new home accepts writes immediately (no leases outlived the move).
  SimTime before = system_.sim().now();
  result = Call(system_.node(3), *cap, "increment");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 6u);
  EXPECT_LT(system_.sim().now() - before, Milliseconds(100));
}

TEST_F(LeaseFixture, RebornHomeQuiescesWritesForAFullLeaseTerm) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep(3));
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(0).CheckpointObject(cap->name())).ok());
  ASSERT_TRUE(Call(system_.node(1), *cap, "read").ok());
  system_.RunFor(Milliseconds(5));
  ASSERT_GE(system_.node(0).stats().lease_grants, 1u);

  // The home dies and reincarnates. It cannot know what its predecessor
  // granted, so the first write waits out a full lease term from the
  // reactivation (Gray & Cheriton's recovering-server rule).
  system_.node(0).FailNode();
  system_.node(0).RestartNode();
  SimTime before = system_.sim().now();
  InvokeResult result = system_.Await(
      system_.node(2).Invoke(*cap, "increment", InvokeArgs{}.AddU64(1),
                             InvokeOptions::WithTimeout(Seconds(10))));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 4u);
  EXPECT_GE(system_.sim().now() - before, system_.config().kernel.lease_duration);

  // With the quiesce paid and every pre-crash lease expired, the ex-holder
  // observes the committed value.
  result = system_.Await(system_.node(1).Invoke(
      *cap, "read", {}, InvokeOptions::WithTimeout(Seconds(10))));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 4u);
}

// Chaos case: the recall is lost to a wire partition. The writer must block
// until the marooned holder's lease expires on its own — never commit under
// a live lease — and once it commits, no read anywhere observes the old
// value. Seeded and fully deterministic.
TEST(LeaseChaos, RecallLostUnderPartitionResolvesByExpiryNeverStaleWrites) {
  EdenSystem system(LeaseConfig(/*seed=*/42));
  system.RegisterType(MakeCounterType());
  system.AddNodes(4);
  auto cap = system.node(0).CreateObject("counter", CounterRep(1));
  ASSERT_TRUE(cap.ok());

  ASSERT_TRUE(system.Await(system.node(1).Invoke(*cap, "read")).ok());
  system.RunFor(Milliseconds(5));
  ASSERT_GE(system.node(0).stats().lease_grants, 1u);

  // The holder drops off the wire; the recall (and its retransmits) are lost.
  system.lan().SetPartitionGroup(system.node(1).station(), 1);
  SimTime write_start = system.sim().now();
  Future<InvokeResult> write = system.node(0).Invoke(
      *cap, "increment", {}, InvokeOptions::WithTimeout(Seconds(10)));
  system.RunFor(Milliseconds(100));
  // Still blocked: the home has not heard a release and the lease is live.
  EXPECT_FALSE(write.ready());

  // The marooned holder legitimately serves the pre-write state from its
  // cached copy (zero network) while the write is still uncommitted —
  // that is linearizable, not stale.
  InvokeResult reading = system.Await(system.node(1).Invoke(*cap, "read"));
  ASSERT_TRUE(reading.ok()) << reading.status;
  EXPECT_EQ(reading.results.U64At(0).value(), 1u);

  // The write commits only once the lease must have expired everywhere.
  InvokeResult committed = system.Await(std::move(write));
  ASSERT_TRUE(committed.ok()) << committed.status;
  EXPECT_EQ(committed.results.U64At(0).value(), 2u);
  SimDuration blocked = system.sim().now() - write_start;
  EXPECT_GE(blocked, system.config().kernel.lease_duration - Milliseconds(20));
  EXPECT_GE(system.node(0).stats().lease_expiries, 1u);

  // Post-commit, the ex-holder's lease has expired: its copy is dead and the
  // healed read observes the committed value. No stale read is ever served
  // after the commit.
  system.lan().ClearPartitions();
  InvokeResult healed = system.Await(system.node(1).Invoke(
      *cap, "read", {}, InvokeOptions::WithTimeout(Seconds(10))));
  ASSERT_TRUE(healed.ok()) << healed.status;
  EXPECT_EQ(healed.results.U64At(0).value(), 2u);
}

// The tentpole's determinism gate. One read-heavy workload with occasional
// writes, run three ways:
//   - leases on, same seed, twice  -> bit-identical executions
//   - leases on vs leases off     -> identical observed values and identical
//                                     object state at quiesce (leases change
//                                     which node serves a read, never what
//                                     the read returns)
struct LeaseWorkloadResult {
  uint64_t run_digest = 0;    // full execution fingerprint
  uint64_t values_digest = 0; // every value every invocation returned
  uint64_t rep_digest = 0;    // the object's representation at quiesce
  uint64_t local_reads = 0;
};

LeaseWorkloadResult RunLeaseWorkload(uint64_t seed, bool leases) {
  SystemConfig config;
  config.seed = seed;
  config.kernel.lease_reads = leases;
  EdenSystem system(config);
  system.RegisterType(MakeCounterType());
  system.AddNodes(4);
  auto cap = system.node(0).CreateObject("counter", CounterRep());
  EXPECT_TRUE(cap.ok());

  LeaseWorkloadResult out;
  Digest values;
  for (int round = 0; round < 12; round++) {
    for (size_t reader = 1; reader < 4; reader++) {
      InvokeResult r = system.Await(system.node(reader).Invoke(*cap, "read"));
      EXPECT_TRUE(r.ok()) << r.status;
      values.Mix(r.results.U64At(0).value_or(~0ull));
    }
    if (round % 3 == 2) {
      InvokeResult w = system.Await(
          system.node(static_cast<size_t>(round) % 4).Invoke(*cap, "increment"));
      EXPECT_TRUE(w.ok()) << w.status;
      values.Mix(w.results.U64At(0).value_or(~0ull));
    }
    // Let some leases age toward (and past) renewal and expiry.
    system.RunFor(Milliseconds(round % 4 == 3 ? 600 : 40));
  }
  system.RunFor(Seconds(1));  // quiesce: all grants/recalls/acks drained

  out.values_digest = values.value();
  auto object = system.node(0).FindActive(cap->name());
  EXPECT_NE(object, nullptr);
  if (object != nullptr) {
    out.rep_digest = object->core->rep.DigestValue();
  }
  Digest run;
  run.Mix(system.sim().trace().value());
  run.Mix(system.sim().events_executed());
  run.Mix(values.value());
  out.run_digest = run.value();
  for (size_t n = 0; n < system.node_count(); n++) {
    out.local_reads += system.node(n).stats().lease_local_reads;
  }
  return out;
}

TEST(LeaseDeterminism, SameSeedBitIdenticalAndLeasesNeverChangeObservedState) {
  for (uint64_t seed : {7ull, 1981ull}) {
    LeaseWorkloadResult on = RunLeaseWorkload(seed, true);
    LeaseWorkloadResult again = RunLeaseWorkload(seed, true);
    EXPECT_EQ(on.run_digest, again.run_digest) << "seed " << seed;
    EXPECT_GT(on.local_reads, 0u) << "leases never engaged (seed " << seed << ")";

    LeaseWorkloadResult off = RunLeaseWorkload(seed, false);
    EXPECT_EQ(off.local_reads, 0u);
    // Leases change the wire traffic, so the executions differ...
    EXPECT_NE(on.run_digest, off.run_digest) << "seed " << seed;
    // ...but never the values served or the object state at quiesce.
    EXPECT_EQ(on.values_digest, off.values_digest) << "seed " << seed;
    EXPECT_EQ(on.rep_digest, off.rep_digest) << "seed " << seed;
  }
}

}  // namespace
}  // namespace eden
