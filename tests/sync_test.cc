// Unit tests for the intra-object synchronization primitives of paper
// section 4.2: semaphores and message ports, including their crash behavior
// (they are short-term state).
#include <gtest/gtest.h>

#include "src/kernel/sync.h"
#include "src/sim/simulation.h"

namespace eden {
namespace {

TEST(SemaphoreTest, PSucceedsImmediatelyWhenAvailable) {
  Semaphore sem(2);
  Future<Status> first = sem.P();
  Future<Status> second = sem.P();
  EXPECT_TRUE(first.ready());
  EXPECT_TRUE(second.ready());
  EXPECT_TRUE(first.Get().ok());
  EXPECT_EQ(sem.value(), 0);
}

TEST(SemaphoreTest, PBlocksUntilV) {
  Semaphore sem(0);
  Future<Status> waiter = sem.P();
  EXPECT_FALSE(waiter.ready());
  sem.V();
  ASSERT_TRUE(waiter.ready());
  EXPECT_TRUE(waiter.Get().ok());
}

TEST(SemaphoreTest, WaitersWakeInFifoOrder) {
  Semaphore sem(0);
  std::vector<int> order;
  for (int i = 0; i < 3; i++) {
    sem.P().OnReady([&order, i] { order.push_back(i); });
  }
  sem.V();
  sem.V();
  sem.V();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SemaphoreTest, VWithNoWaitersAccumulates) {
  Semaphore sem(0);
  sem.V();
  sem.V();
  EXPECT_EQ(sem.value(), 2);
  EXPECT_TRUE(sem.P().ready());
  EXPECT_TRUE(sem.P().ready());
  EXPECT_FALSE(sem.P().ready());
}

TEST(SemaphoreTest, FailAllWakesWaitersWithError) {
  Semaphore sem(0);
  Future<Status> waiter = sem.P();
  sem.FailAll(AbortedError("crash"));
  ASSERT_TRUE(waiter.ready());
  EXPECT_EQ(waiter.Get().code(), StatusCode::kAborted);
  // After failure, further P()s fail fast and V() is inert.
  Future<Status> late = sem.P();
  ASSERT_TRUE(late.ready());
  EXPECT_FALSE(late.Get().ok());
  sem.V();  // no crash
}

TEST(SemaphoreTest, MutualExclusionPattern) {
  // The limit-1 pattern the paper highlights: P/V brackets never overlap.
  Simulation sim;
  Semaphore mutex(1);
  int inside = 0;
  int max_inside = 0;
  int completed = 0;
  auto critical = [&](Semaphore& m) -> Task<void> {
    Status acquired = co_await m.P();
    EXPECT_TRUE(acquired.ok());
    inside++;
    max_inside = std::max(max_inside, inside);
    co_await SleepFor(sim, Milliseconds(10));
    inside--;
    m.V();
    completed++;
  };
  for (int i = 0; i < 5; i++) {
    Spawn(critical(mutex));
  }
  sim.Run();
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(max_inside, 1);
}

TEST(MessagePortTest, SendThenReceive) {
  MessagePort port;
  port.Send(ToBytes("hello"));
  Future<StatusOr<Bytes>> received = port.Receive();
  ASSERT_TRUE(received.ready());
  EXPECT_EQ(ToString(received.Get().value()), "hello");
}

TEST(MessagePortTest, ReceiveBlocksUntilSend) {
  MessagePort port;
  Future<StatusOr<Bytes>> received = port.Receive();
  EXPECT_FALSE(received.ready());
  port.Send(ToBytes("late"));
  ASSERT_TRUE(received.ready());
  EXPECT_EQ(ToString(received.Get().value()), "late");
}

TEST(MessagePortTest, MessagesAndWaitersAreFifo) {
  MessagePort port;
  port.Send(ToBytes("a"));
  port.Send(ToBytes("b"));
  EXPECT_EQ(port.queued(), 2u);
  EXPECT_EQ(ToString(port.Receive().Get().value()), "a");
  EXPECT_EQ(ToString(port.Receive().Get().value()), "b");

  // Waiters queue in order and sends resolve the oldest first.
  Future<StatusOr<Bytes>> first = port.Receive();
  Future<StatusOr<Bytes>> second = port.Receive();
  EXPECT_EQ(port.waiter_count(), 2u);
  port.Send(ToBytes("x"));
  port.Send(ToBytes("y"));
  EXPECT_EQ(ToString(first.Get().value()), "x");
  EXPECT_EQ(ToString(second.Get().value()), "y");
  EXPECT_EQ(port.waiter_count(), 0u);
}

TEST(MessagePortTest, FailAllWakesReceiversWithError) {
  MessagePort port;
  Future<StatusOr<Bytes>> waiter = port.Receive();
  port.FailAll(AbortedError("crash"));
  ASSERT_TRUE(waiter.ready());
  EXPECT_EQ(waiter.Get().status().code(), StatusCode::kAborted);
  // Post-failure behavior: receives fail, sends are dropped.
  port.Send(ToBytes("void"));
  Future<StatusOr<Bytes>> late = port.Receive();
  ASSERT_TRUE(late.ready());
  EXPECT_FALSE(late.Get().ok());
}

TEST(MessagePortTest, ProducerConsumerPipeline) {
  // A behavior-style consumer drains a port fed by bursts of producers.
  Simulation sim;
  MessagePort port;
  std::vector<std::string> consumed;
  auto consumer = [&](MessagePort& p) -> Task<void> {
    while (true) {
      StatusOr<Bytes> message = co_await p.Receive();
      if (!message.ok()) {
        co_return;
      }
      consumed.push_back(ToString(*message));
      if (consumed.size() == 6) {
        co_return;
      }
    }
  };
  Spawn(consumer(port));
  for (int burst = 0; burst < 2; burst++) {
    sim.Schedule(Milliseconds(burst * 10), [&port, burst] {
      for (int i = 0; i < 3; i++) {
        port.Send(ToBytes("m" + std::to_string(burst * 3 + i)));
      }
    });
  }
  sim.Run();
  ASSERT_EQ(consumed.size(), 6u);
  EXPECT_EQ(consumed.front(), "m0");
  EXPECT_EQ(consumed.back(), "m5");
}

}  // namespace
}  // namespace eden
