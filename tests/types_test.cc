// Tests for the abstract type hierarchy (paper section 5) and the standard
// object templates built on it.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

TEST(AbstractTypeTest, SubtypeRelationIsReflexiveAndTransitive) {
  auto base = StdObjectType();
  auto middle = std::make_shared<AbstractType>("middle", base);
  auto leaf = std::make_shared<AbstractType>("leaf", middle);
  EXPECT_TRUE(leaf->IsSubtypeOf(*leaf));
  EXPECT_TRUE(leaf->IsSubtypeOf(*middle));
  EXPECT_TRUE(leaf->IsSubtypeOf(*base));
  EXPECT_FALSE(base->IsSubtypeOf(*leaf));
  EXPECT_EQ(leaf->Depth(), 2u);
  EXPECT_EQ(base->Depth(), 0u);
}

TEST(AbstractTypeTest, SubtypeInheritsSupertypeOperations) {
  auto counter = StdCounterType()->BuildTypeManager();
  // Own operations.
  EXPECT_NE(counter->FindOperation("increment"), nullptr);
  // Inherited from std.object.
  EXPECT_NE(counter->FindOperation("checkpoint"), nullptr);
  EXPECT_NE(counter->FindOperation("move_to"), nullptr);
  EXPECT_NE(counter->FindOperation("describe"), nullptr);
}

TEST(AbstractTypeTest, SubtypeOverridesInheritedOperation) {
  auto base = std::make_shared<AbstractType>("base");
  base->AddOperation(AbstractOperation{
      .name = "greet",
      .handler = [](InvokeContext&) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(InvokeArgs{}.AddString("base"));
      },
  });
  auto derived = std::make_shared<AbstractType>("derived", base);
  derived->AddOperation(AbstractOperation{
      .name = "greet",
      .handler = [](InvokeContext&) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(InvokeArgs{}.AddString("derived"));
      },
  });

  EdenSystem system;
  system.RegisterType(derived->BuildTypeManager());
  system.AddNodes(1);
  auto cap = system.node(0).CreateObject("derived", Representation{});
  ASSERT_TRUE(cap.ok());
  InvokeResult result = system.Await(system.node(0).Invoke(*cap, "greet"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.StringAt(0).value(), "derived");
}

TEST(AbstractTypeTest, SubtypeCanRetuneInheritedClass) {
  // The derived type widens a class defined by the base: the concrete type
  // manager must carry the derived limit.
  auto base = std::make_shared<AbstractType>("base2");
  base->AddClass("workers", 1);
  auto derived = std::make_shared<AbstractType>("derived2", base);
  derived->AddClass("workers", 6);
  auto concrete = derived->BuildTypeManager();
  bool found = false;
  for (const auto& spec : concrete->classes()) {
    if (spec.name == "workers") {
      EXPECT_EQ(spec.concurrency_limit, 6);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

class StandardTypesFixture : public ::testing::Test {
 protected:
  StandardTypesFixture() {
    RegisterStandardTypes(system_);
    system_.AddNodes(3);
  }

  InvokeResult Call(NodeKernel& from, const Capability& cap, const std::string& op,
                    InvokeArgs args = {}) {
    return system_.Await(from.Invoke(cap, op, std::move(args)));
  }

  EdenSystem system_;
};

TEST_F(StandardTypesFixture, CounterWorksThroughInheritedAndOwnOps) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  InvokeResult result = Call(system_.node(1), *cap, "increment",
                             InvokeArgs{}.AddU64(4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 4u);
  result = Call(system_.node(1), *cap, "describe");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.StringAt(0).value(), "std.counter");
}

TEST_F(StandardTypesFixture, DataObjectPutGetAppend) {
  auto cap = system_.node(0).CreateObject("std.data", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(1), *cap, "put",
                   InvokeArgs{}.AddString("hello")).ok());
  InvokeResult result = Call(system_.node(2), *cap, "append",
                             InvokeArgs{}.AddString(", world"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 12u);
  result = Call(system_.node(1), *cap, "get");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToString(result.results.BytesAt(0).value()), "hello, world");
}

TEST_F(StandardTypesFixture, QueueDequeueBlocksUntilEnqueue) {
  auto cap = system_.node(0).CreateObject("std.queue", Representation{});
  ASSERT_TRUE(cap.ok());
  Future<InvokeResult> consumer = system_.node(1).Invoke(*cap, "dequeue");
  system_.RunFor(Milliseconds(100));
  EXPECT_FALSE(consumer.ready());

  ASSERT_TRUE(Call(system_.node(2), *cap, "enqueue",
                   InvokeArgs{}.AddString("payload")).ok());
  InvokeResult result = system_.Await(std::move(consumer));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(ToString(result.results.BytesAt(0).value()), "payload");
}

TEST_F(StandardTypesFixture, QueueIsFifoAcrossManyItems) {
  auto cap = system_.node(0).CreateObject("std.queue", Representation{});
  ASSERT_TRUE(cap.ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(Call(system_.node(1), *cap, "enqueue",
                     InvokeArgs{}.AddString("item" + std::to_string(i))).ok());
  }
  InvokeResult length = Call(system_.node(2), *cap, "length");
  EXPECT_EQ(length.results.U64At(0).value(), 10u);
  for (int i = 0; i < 10; i++) {
    InvokeResult result = Call(system_.node(2), *cap, "dequeue");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ToString(result.results.BytesAt(0).value()),
              "item" + std::to_string(i));
  }
}

TEST_F(StandardTypesFixture, QueueSemaphoreIsRebuiltOnReincarnation) {
  // Enqueue two items, checkpoint, crash. After reincarnation the "items"
  // semaphore (short-term state!) must reflect the two queued items, so two
  // dequeues succeed without blocking and a third blocks.
  auto cap = system_.node(0).CreateObject("std.queue", Representation{});
  ASSERT_TRUE(cap.ok());
  Call(system_.node(1), *cap, "enqueue", InvokeArgs{}.AddString("a"));
  Call(system_.node(1), *cap, "enqueue", InvokeArgs{}.AddString("b"));
  ASSERT_TRUE(Call(system_.node(1), *cap, "checkpoint").ok());
  ASSERT_TRUE(Call(system_.node(1), *cap, "crash").ok());

  InvokeResult result = Call(system_.node(2), *cap, "dequeue");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(ToString(result.results.BytesAt(0).value()), "a");
  result = Call(system_.node(2), *cap, "dequeue");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToString(result.results.BytesAt(0).value()), "b");

  Future<InvokeResult> blocked = system_.node(2).Invoke(*cap, "dequeue");
  system_.RunFor(Milliseconds(100));
  EXPECT_FALSE(blocked.ready());
  Call(system_.node(1), *cap, "enqueue", InvokeArgs{}.AddString("c"));
  EXPECT_TRUE(system_.Await(std::move(blocked)).ok());
}

TEST_F(StandardTypesFixture, DirectoryBindingsSurviveCrashWithoutExplicitCheckpoint) {
  auto dir = system_.node(0).CreateObject("std.directory", Representation{});
  ASSERT_TRUE(dir.ok());
  auto target = system_.node(1).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(target.ok());

  ASSERT_TRUE(Call(system_.node(2), *dir, "bind",
                   InvokeArgs{}.AddString("my-counter").AddCapability(*target))
                  .ok());
  // Directories are write-through: crash immediately, binding must survive.
  ASSERT_TRUE(Call(system_.node(2), *dir, "crash").ok());

  InvokeResult result = Call(system_.node(2), *dir, "lookup",
                             InvokeArgs{}.AddString("my-counter"));
  ASSERT_TRUE(result.ok()) << result.status;
  Capability found = result.results.CapabilityAt(0).value();
  EXPECT_EQ(found.name(), target->name());

  // The recovered capability still works end-to-end.
  result = Call(system_.node(2), found, "increment");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 1u);
}

TEST_F(StandardTypesFixture, DirectoryUnbindAndList) {
  auto dir = system_.node(0).CreateObject("std.directory", Representation{});
  ASSERT_TRUE(dir.ok());
  auto a = system_.node(0).CreateObject("std.counter", Representation{});
  auto b = system_.node(0).CreateObject("std.counter", Representation{});
  Call(system_.node(0), *dir, "bind", InvokeArgs{}.AddString("a").AddCapability(*a));
  Call(system_.node(0), *dir, "bind", InvokeArgs{}.AddString("b").AddCapability(*b));

  InvokeResult result = Call(system_.node(0), *dir, "list");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.data.size(), 2u);

  ASSERT_TRUE(Call(system_.node(0), *dir, "unbind",
                   InvokeArgs{}.AddString("a")).ok());
  result = Call(system_.node(0), *dir, "lookup", InvokeArgs{}.AddString("a"));
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
  result = Call(system_.node(0), *dir, "lookup", InvokeArgs{}.AddString("b"));
  EXPECT_TRUE(result.ok());
}

TEST_F(StandardTypesFixture, DirectoryRebindReplacesCapability) {
  auto dir = system_.node(0).CreateObject("std.directory", Representation{});
  auto a = system_.node(0).CreateObject("std.counter", Representation{});
  auto b = system_.node(0).CreateObject("std.counter", Representation{});
  Call(system_.node(0), *dir, "bind", InvokeArgs{}.AddString("x").AddCapability(*a));
  Call(system_.node(0), *dir, "bind", InvokeArgs{}.AddString("x").AddCapability(*b));
  InvokeResult result = Call(system_.node(0), *dir, "lookup",
                             InvokeArgs{}.AddString("x"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.CapabilityAt(0).value().name(), b->name());
  result = Call(system_.node(0), *dir, "list");
  EXPECT_EQ(result.results.data.size(), 1u);
}

TEST_F(StandardTypesFixture, MailboxDepositRetrieve) {
  auto box = system_.node(0).CreateObject("std.mailbox", Representation{});
  ASSERT_TRUE(box.ok());
  ASSERT_TRUE(Call(system_.node(1), *box, "deposit",
                   InvokeArgs{}.AddString("alice").AddString("hi bob")).ok());
  InvokeResult count = Call(system_.node(2), *box, "count");
  EXPECT_EQ(count.results.U64At(0).value(), 1u);

  InvokeResult result = Call(system_.node(2), *box, "retrieve");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.StringAt(0).value(), "alice");
  EXPECT_EQ(ToString(result.results.BytesAt(1).value()), "hi bob");
}

TEST_F(StandardTypesFixture, MailboxMailSurvivesNodeFailure) {
  auto box = system_.node(0).CreateObject("std.mailbox", Representation{});
  ASSERT_TRUE(box.ok());
  ASSERT_TRUE(Call(system_.node(1), *box, "deposit",
                   InvokeArgs{}.AddString("alice").AddString("important")).ok());
  system_.node(0).FailNode();
  system_.node(0).RestartNode();
  InvokeResult result = Call(system_.node(1), *box, "retrieve");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.StringAt(0).value(), "alice");
  EXPECT_EQ(ToString(result.results.BytesAt(1).value()), "important");
}

TEST(StandardTypeHelpersTest, ListCodecsRoundTrip) {
  std::vector<Bytes> items = {ToBytes("one"), {}, ToBytes("three")};
  auto decoded = DecodeBytesList(EncodeBytesList(items));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, items);

  std::vector<std::string> names = {"a", "", "c"};
  auto decoded_names = DecodeStringList(EncodeStringList(names));
  ASSERT_TRUE(decoded_names.ok());
  EXPECT_EQ(*decoded_names, names);
}

}  // namespace
}  // namespace eden
