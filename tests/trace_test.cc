// Tests for the kernel tracing subsystem.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "src/trace/trace.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

class TraceFixture : public ::testing::Test {
 protected:
  TraceFixture() {
    RegisterStandardTypes(system_);
    system_.AddNodes(3);
    for (size_t n = 0; n < system_.node_count(); n++) {
      system_.node(n).set_trace(&trace_);
    }
  }

  EdenSystem system_;
  TraceBuffer trace_;
};

TEST_F(TraceFixture, InvocationLifecycleIsRecorded) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  system_.Await(system_.node(1).Invoke(*cap, "increment"));

  EXPECT_GE(trace_.counts().at(TraceEventKind::kInvokeStart), 1u);
  EXPECT_GE(trace_.counts().at(TraceEventKind::kInvokeComplete), 1u);
  EXPECT_GE(trace_.counts().at(TraceEventKind::kDispatch), 1u);
  EXPECT_GE(trace_.counts().at(TraceEventKind::kLocateBroadcast), 1u);
}

TEST_F(TraceFixture, MeanInvocationLatencyMatchesPairs) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  for (int i = 0; i < 5; i++) {
    system_.Await(system_.node(1).Invoke(*cap, "increment"));
  }
  SimDuration mean = trace_.MeanInvocationLatency();
  // Remote invocations in the default configuration land near 700-900 us.
  EXPECT_GT(mean, Microseconds(400));
  EXPECT_LT(mean, Milliseconds(5));
}

TEST_F(TraceFixture, LifecycleEventsForCheckpointCrashActivation) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  system_.Await(system_.node(0).CheckpointObject(cap->name()));
  system_.Await(system_.node(0).Invoke(*cap, "crash"));
  system_.Await(system_.node(1).Invoke(*cap, "read"));

  EXPECT_EQ(trace_.counts().at(TraceEventKind::kCheckpoint), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kObjectCrash), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kActivation), 1u);
}

TEST_F(TraceFixture, RingBufferEvictsButCountsPersist) {
  TraceBuffer small(8);
  system_.node(0).set_trace(&small);
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  for (int i = 0; i < 20; i++) {
    system_.Await(system_.node(0).Invoke(*cap, "increment"));
  }
  EXPECT_LE(small.size(), 8u);
  EXPECT_GE(small.total_recorded(), 40u);  // 20 starts + 20 completes
  EXPECT_EQ(small.counts().at(TraceEventKind::kInvokeStart), 20u);
}

TEST_F(TraceFixture, DumpAndSummaryAreReadable) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  system_.Await(system_.node(1).Invoke(*cap, "increment"));
  std::string dump = trace_.Dump(4);
  EXPECT_NE(dump.find("INVOKE_COMPLETE"), std::string::npos);
  std::string summary = trace_.Summary();
  EXPECT_NE(summary.find("DISPATCH"), std::string::npos);
  EXPECT_NE(summary.find("x"), std::string::npos);
}

TEST_F(TraceFixture, NodeFailureAndMoveAreTraced) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  auto object = system_.node(0).FindActive(cap->name());
  system_.Await(system_.node(0).MoveObject(object, system_.node(2).station()));
  system_.RunFor(Milliseconds(10));
  system_.node(1).FailNode();
  system_.node(1).RestartNode();

  EXPECT_EQ(trace_.counts().at(TraceEventKind::kMoveOut), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kMoveIn), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kNodeFailure), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kNodeRestart), 1u);
}

TEST_F(TraceFixture, ClearResetsEverything) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  system_.Await(system_.node(0).Invoke(*cap, "read"));
  EXPECT_GT(trace_.size(), 0u);
  trace_.Clear();
  EXPECT_EQ(trace_.size(), 0u);
  EXPECT_EQ(trace_.total_recorded(), 0u);
  EXPECT_TRUE(trace_.counts().empty());
}

}  // namespace
}  // namespace eden
