// Tests for the kernel tracing subsystem.
#include <gtest/gtest.h>

#include <set>

#include "src/kernel/eden_system.h"
#include "src/trace/span.h"
#include "src/trace/trace.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

class TraceFixture : public ::testing::Test {
 protected:
  TraceFixture() {
    RegisterStandardTypes(system_);
    system_.AddNodes(3);
    for (size_t n = 0; n < system_.node_count(); n++) {
      system_.node(n).set_trace(&trace_);
    }
  }

  EdenSystem system_;
  TraceBuffer trace_;
};

TEST_F(TraceFixture, InvocationLifecycleIsRecorded) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  system_.Await(system_.node(1).Invoke(*cap, "increment"));

  EXPECT_GE(trace_.counts().at(TraceEventKind::kInvokeStart), 1u);
  EXPECT_GE(trace_.counts().at(TraceEventKind::kInvokeComplete), 1u);
  EXPECT_GE(trace_.counts().at(TraceEventKind::kDispatch), 1u);
  // The default backend resolves through the partitioned directory.
  EXPECT_GE(trace_.counts().at(TraceEventKind::kDirectoryLookup), 1u);
}

TEST_F(TraceFixture, MeanInvocationLatencyMatchesPairs) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  for (int i = 0; i < 5; i++) {
    system_.Await(system_.node(1).Invoke(*cap, "increment"));
  }
  SimDuration mean = trace_.MeanInvocationLatency();
  // Remote invocations in the default configuration land near 700-900 us.
  EXPECT_GT(mean, Microseconds(400));
  EXPECT_LT(mean, Milliseconds(5));
}

TEST_F(TraceFixture, LifecycleEventsForCheckpointCrashActivation) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  system_.Await(system_.node(0).CheckpointObject(cap->name()));
  system_.Await(system_.node(0).Invoke(*cap, "crash"));
  system_.Await(system_.node(1).Invoke(*cap, "read"));

  EXPECT_EQ(trace_.counts().at(TraceEventKind::kCheckpoint), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kObjectCrash), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kActivation), 1u);
}

TEST_F(TraceFixture, RingBufferEvictsButCountsPersist) {
  TraceBuffer small(8);
  system_.node(0).set_trace(&small);
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  for (int i = 0; i < 20; i++) {
    system_.Await(system_.node(0).Invoke(*cap, "increment"));
  }
  EXPECT_LE(small.size(), 8u);
  EXPECT_GE(small.total_recorded(), 40u);  // 20 starts + 20 completes
  EXPECT_EQ(small.counts().at(TraceEventKind::kInvokeStart), 20u);
}

TEST_F(TraceFixture, DumpAndSummaryAreReadable) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  system_.Await(system_.node(1).Invoke(*cap, "increment"));
  std::string dump = trace_.Dump(4);
  EXPECT_NE(dump.find("INVOKE_COMPLETE"), std::string::npos);
  std::string summary = trace_.Summary();
  EXPECT_NE(summary.find("DISPATCH"), std::string::npos);
  EXPECT_NE(summary.find("x"), std::string::npos);
}

TEST_F(TraceFixture, NodeFailureAndMoveAreTraced) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  auto object = system_.node(0).FindActive(cap->name());
  system_.Await(system_.node(0).MoveObject(object, system_.node(2).station()));
  system_.RunFor(Milliseconds(10));
  system_.node(1).FailNode();
  system_.node(1).RestartNode();

  EXPECT_EQ(trace_.counts().at(TraceEventKind::kMoveOut), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kMoveIn), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kNodeFailure), 1u);
  EXPECT_EQ(trace_.counts().at(TraceEventKind::kNodeRestart), 1u);
}

TEST_F(TraceFixture, ClearResetsEverything) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  system_.Await(system_.node(0).Invoke(*cap, "read"));
  EXPECT_GT(trace_.size(), 0u);
  trace_.Clear();
  EXPECT_EQ(trace_.size(), 0u);
  EXPECT_EQ(trace_.total_recorded(), 0u);
  EXPECT_TRUE(trace_.counts().empty());
}

TEST_F(TraceFixture, RingBufferTracksDropsAndHighWater) {
  TraceBuffer small(8);
  MetricsRegistry registry;
  small.set_metrics(&registry);
  system_.node(0).set_trace(&small);
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  for (int i = 0; i < 20; i++) {
    system_.Await(system_.node(0).Invoke(*cap, "increment"));
  }
  EXPECT_EQ(small.high_water(), 8u);
  EXPECT_EQ(small.dropped(), small.total_recorded() - small.size());
  EXPECT_GT(small.dropped(), 0u);
  EXPECT_EQ(registry.FindCounter("trace.buffer.dropped")->value(),
            small.dropped());
  EXPECT_EQ(registry.FindCounter("trace.buffer.recorded")->value(),
            small.total_recorded());
  std::string summary = small.Summary();
  EXPECT_NE(summary.find("dropped"), std::string::npos);
  EXPECT_NE(summary.find("high-water"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Causal spans (DESIGN.md §12).

class SpanFixture : public ::testing::Test {
 protected:
  SpanFixture() {
    RegisterStandardTypes(system_);
    system_.set_span_collector(&spans_);
    system_.AddNodes(3);
  }

  // Every trace finalizes only once its reply-ACK wire spans close, a little
  // after the invocation future resolves — give the simulation time to drain.
  void Drain() { system_.RunFor(Milliseconds(20)); }

  EdenSystem system_;
  SpanCollector spans_;
};

// The PR's acceptance shape: a cross-node invocation that needs a location
// broadcast and an on-demand activation produces ONE span tree, fully
// parent-linked across all three kernels, whose per-phase critical-path
// durations sum exactly to the end-to-end latency.
TEST_F(SpanFixture, CrossNodeActivationTreeSumsToEndToEndLatency) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(0).CheckpointObject(cap->name())).ok());
  system_.Await(system_.node(0).Invoke(*cap, "crash"));
  Drain();
  spans_.Clear();  // Drop the setup traces; measure only the next invocation.

  SimTime before = system_.sim().now();
  ASSERT_TRUE(system_.Await(system_.node(2).Invoke(*cap, "read")).ok());
  SimTime after = system_.sim().now();
  Drain();

  ASSERT_EQ(spans_.completed().size(), 1u);
  EXPECT_EQ(spans_.live_traces(), 0u);
  const TraceTree& tree = spans_.completed().front();
  const Span* root = tree.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->kind, SpanKind::kInvocation);
  EXPECT_EQ(root->parent_span_id, 0u);
  EXPECT_EQ(root->node, system_.node(2).station());

  // Every non-root span links to a parent inside the same tree, and the
  // phases cross at least the invoking and activating kernels.
  std::set<SpanKind> kinds;
  std::set<StationId> nodes;
  for (const Span& span : tree.spans) {
    EXPECT_FALSE(span.open);
    kinds.insert(span.kind);
    nodes.insert(span.node);
    if (span.span_id != root->span_id) {
      EXPECT_NE(tree.Find(span.parent_span_id), nullptr)
          << "unlinked " << SpanKindName(span.kind) << " span";
    }
  }
  EXPECT_TRUE(kinds.count(SpanKind::kLocate));
  EXPECT_TRUE(kinds.count(SpanKind::kWire));
  EXPECT_TRUE(kinds.count(SpanKind::kDispatch));
  EXPECT_TRUE(kinds.count(SpanKind::kActivation));
  EXPECT_TRUE(kinds.count(SpanKind::kStoreRead));
  EXPECT_GE(nodes.size(), 2u);

  // Attribution is exhaustive: the typed phases partition the root interval.
  PhaseBreakdown breakdown = SpanCollector::CriticalPath(tree);
  SimDuration sum = 0;
  for (size_t k = 0; k < kSpanKindCount; k++) {
    sum += breakdown.by_kind[k];
  }
  EXPECT_EQ(sum, root->duration());
  EXPECT_EQ(breakdown.total, root->duration());
  // ...and the root interval is the end-to-end latency the caller saw.
  EXPECT_GE(root->start, before);
  EXPECT_LE(root->end, after);
  EXPECT_EQ(root->duration(), after - before);
  // Activation work shows up either as the activation phase itself or as the
  // deeper store reads it issues (attribution charges the deepest span).
  EXPECT_GT(breakdown.of(SpanKind::kActivation) +
                breakdown.of(SpanKind::kStoreRead),
            SimDuration{0});
}

TEST_F(SpanFixture, RedirectAfterMoveIsAnnotatedOnTheInvocationSpan) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  // Warm node2's location cache, then move the object out from under it.
  ASSERT_TRUE(system_.Await(system_.node(2).Invoke(*cap, "increment")).ok());
  auto object = system_.node(0).FindActive(cap->name());
  ASSERT_NE(object, nullptr);
  ASSERT_TRUE(
      system_
          .Await(system_.node(0).MoveObject(object, system_.node(1).station()))
          .ok());
  Drain();
  spans_.Clear();

  ASSERT_TRUE(system_.Await(system_.node(2).Invoke(*cap, "read")).ok());
  Drain();

  ASSERT_GE(spans_.completed().size(), 1u);
  const TraceTree& tree = spans_.completed().back();
  bool redirect_noted = false;
  for (const Span& span : tree.spans) {
    for (const SpanNote& note : span.notes) {
      redirect_noted |= note.text.find("redirect") != std::string::npos;
    }
  }
  EXPECT_TRUE(redirect_noted);
}

// Spans must close even when the kernel path fails: invoking a dead node's
// object runs locate timeouts, wire give-ups and a failed invocation, and
// after the dust settles no span may still be open.
TEST_F(SpanFixture, FailureAndTimeoutPathsCloseEverySpan) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(1).Invoke(*cap, "increment")).ok());
  Drain();
  system_.node(0).FailNode();

  auto result = system_.Await(system_.node(1).Invoke(
      *cap, "read", InvokeArgs{}, InvokeOptions::WithTimeout(Seconds(5))));
  EXPECT_FALSE(result.ok());
  system_.RunFor(Seconds(10));  // Let retransmits give up.
  spans_.Flush(system_.sim().now());

  EXPECT_EQ(spans_.live_traces(), 0u);
  EXPECT_EQ(spans_.stats().spans_started, spans_.stats().spans_closed);
  // The failed invocation's root must carry a non-empty status.
  bool saw_failed_root = false;
  for (const TraceTree& tree : spans_.completed()) {
    const Span* root = tree.root();
    if (root->kind == SpanKind::kInvocation && !root->status.empty()) {
      saw_failed_root = true;
    }
  }
  EXPECT_TRUE(saw_failed_root);
}

TEST_F(SpanFixture, PhaseHistogramsLandInSystemMetrics) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(1).Invoke(*cap, "increment")).ok());
  Drain();

  const Histogram* e2e = system_.metrics().FindHistogram("trace.e2e.latency");
  ASSERT_NE(e2e, nullptr);
  EXPECT_GE(e2e->count(), 1u);
  const Histogram* wire =
      system_.metrics().FindHistogram("trace.phase.wire.latency");
  ASSERT_NE(wire, nullptr);
  EXPECT_GE(wire->count(), 1u);
  EXPECT_NE(system_.MetricsJson().find("trace.phase.dispatch"),
            std::string::npos);
}

TEST_F(SpanFixture, ChromeExportAndSlowDumpAreWellFormed) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(system_.Await(system_.node(1).Invoke(*cap, "increment")).ok());
  }
  Drain();

  std::string chrome = spans_.ExportChromeTrace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"X\""), std::string::npos);  // span slices
  EXPECT_NE(chrome.find("\"s\""), std::string::npos);  // cross-node flow start
  EXPECT_NE(chrome.find("\"f\""), std::string::npos);  // flow finish

  EXPECT_FALSE(spans_.slow_exemplars().empty());
  std::string dump = spans_.DumpSlowTraces();
  EXPECT_NE(dump.find("critical path:"), std::string::npos);
  EXPECT_NE(dump.find("invoke"), std::string::npos);
}

// Lease traffic is its own phase (DESIGN.md §15): a write that must recall an
// outstanding read lease produces a kLease span inside its invocation tree,
// and the typed phases still partition the end-to-end latency exactly.
TEST(LeaseSpanTest, RecallWindowIsAttributedToLeasePhaseAndSumsToEndToEnd) {
  SystemConfig config;
  config.kernel.lease_reads = true;
  EdenSystem system(config);
  SpanCollector spans;
  system.set_span_collector(&spans);
  RegisterStandardTypes(system);
  system.AddNodes(3);

  auto cap = system.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  // A remote read picks up a lease; let the grant land and setup traces close.
  ASSERT_TRUE(system.Await(system.node(1).Invoke(*cap, "read")).ok());
  system.RunFor(Milliseconds(20));
  spans.Clear();

  SimTime before = system.sim().now();
  ASSERT_TRUE(system.Await(system.node(2).Invoke(*cap, "increment")).ok());
  SimTime after = system.sim().now();
  system.RunFor(Milliseconds(20));

  // Find the write's tree: rooted at node 2's invocation.
  const TraceTree* write_tree = nullptr;
  for (const TraceTree& tree : spans.completed()) {
    const Span* root = tree.root();
    if (root != nullptr && root->kind == SpanKind::kInvocation &&
        root->node == system.node(2).station()) {
      write_tree = &tree;
    }
  }
  ASSERT_NE(write_tree, nullptr);
  const Span* root = write_tree->root();
  EXPECT_EQ(root->duration(), after - before);

  // The recall span is present, closed, and parent-linked into this tree.
  bool saw_lease_span = false;
  for (const Span& span : write_tree->spans) {
    EXPECT_FALSE(span.open);
    if (span.kind == SpanKind::kLease) {
      saw_lease_span = true;
      EXPECT_NE(write_tree->Find(span.parent_span_id), nullptr);
    }
  }
  EXPECT_TRUE(saw_lease_span);

  // Attribution stays exhaustive with the new phase in play, and the recall
  // window actually charges time to it.
  PhaseBreakdown breakdown = SpanCollector::CriticalPath(*write_tree);
  SimDuration sum = 0;
  for (size_t k = 0; k < kSpanKindCount; k++) {
    sum += breakdown.by_kind[k];
  }
  EXPECT_EQ(sum, root->duration());
  EXPECT_GT(breakdown.of(SpanKind::kLease), SimDuration{0});
}

// A collector with tracing spanning checkpoints and moves: driver-initiated
// checkpoints and moves root their own traces and close cleanly.
TEST_F(SpanFixture, CheckpointAndMoveRootTheirOwnTraces) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(0).CheckpointObject(cap->name())).ok());
  auto object = system_.node(0).FindActive(cap->name());
  ASSERT_NE(object, nullptr);
  ASSERT_TRUE(
      system_
          .Await(system_.node(0).MoveObject(object, system_.node(2).station()))
          .ok());
  Drain();

  bool saw_checkpoint_root = false;
  bool saw_move_root = false;
  for (const TraceTree& tree : spans_.completed()) {
    const Span* root = tree.root();
    saw_checkpoint_root |= root->kind == SpanKind::kCheckpoint;
    saw_move_root |= root->kind == SpanKind::kMove;
  }
  EXPECT_TRUE(saw_checkpoint_root);
  EXPECT_TRUE(saw_move_root);
  EXPECT_EQ(spans_.live_traces(), 0u);
}

}  // namespace
}  // namespace eden
