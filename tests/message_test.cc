// Codec tests for every kernel wire message: round trips, kind dispatch, and
// rejection of truncated/corrupted buffers (nothing a peer sends may crash a
// kernel).
#include <gtest/gtest.h>

#include "src/kernel/message.h"

namespace eden {
namespace {

Capability SampleCapability() {
  return Capability(ObjectName(3, 77, 0xabcd), Rights(Rights::kInvoke | Rights::kRead));
}

Representation SampleRepresentation() {
  Representation rep;
  rep.SetDataFromString(0, "state");
  rep.AddCapability(SampleCapability());
  return rep;
}

// Every decoder must reject every strict prefix of a valid encoding.
template <typename Msg>
void ExpectPrefixRejection(const Bytes& encoded) {
  for (size_t cut = 1; cut + 1 < encoded.size(); cut += 3) {
    Bytes truncated(encoded.begin(), encoded.begin() + static_cast<long>(cut));
    EXPECT_FALSE(Msg::Decode(truncated).ok()) << "prefix length " << cut;
  }
}

TEST(MessageTest, InvokeRequestRoundTrip) {
  InvokeRequestMsg msg;
  msg.invocation_id = 0x123456789abcULL;
  msg.reply_to = 4;
  msg.target = SampleCapability();
  msg.operation = "put";
  msg.args.AddString("this is a new line").AddCapability(SampleCapability());
  msg.avoid_hosts = {9, 11};

  Bytes encoded = msg.Encode();
  EXPECT_EQ(PeekMessageKind(encoded).value(), MessageKind::kInvokeRequest);
  auto decoded = InvokeRequestMsg::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->invocation_id, msg.invocation_id);
  EXPECT_EQ(decoded->reply_to, msg.reply_to);
  EXPECT_EQ(decoded->target, msg.target);
  EXPECT_EQ(decoded->operation, "put");
  EXPECT_EQ(decoded->args.StringAt(0).value(), "this is a new line");
  EXPECT_EQ(decoded->avoid_hosts, (std::vector<StationId>{9, 11}));
  ExpectPrefixRejection<InvokeRequestMsg>(encoded);
}

TEST(MessageTest, InvokeReplyRoundTrip) {
  InvokeReplyMsg msg;
  msg.invocation_id = 42;
  msg.result.status = TimeoutError("too slow");
  msg.result.results.AddU64(7);
  msg.target_frozen = true;

  Bytes encoded = msg.Encode();
  auto decoded = InvokeReplyMsg::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->result.status.code(), StatusCode::kTimeout);
  EXPECT_EQ(decoded->result.status.message(), "too slow");
  EXPECT_EQ(decoded->result.results.U64At(0).value(), 7u);
  EXPECT_TRUE(decoded->target_frozen);
  ExpectPrefixRejection<InvokeReplyMsg>(encoded);
}

TEST(MessageTest, InvokeRedirectRoundTrip) {
  InvokeRedirectMsg msg;
  msg.invocation_id = 5;
  msg.name = ObjectName(1, 2, 3);
  msg.new_host = kNoStation;
  msg.epoch = 0x1122334455ULL;
  auto decoded = InvokeRedirectMsg::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->new_host, kNoStation);
  EXPECT_EQ(decoded->name, msg.name);
  EXPECT_EQ(decoded->epoch, msg.epoch);
}

TEST(MessageTest, LocateRoundTrips) {
  LocateRequestMsg request;
  request.query_id = 77;
  request.reply_to = 2;
  request.name = ObjectName(9, 9, 9);
  auto decoded_request = LocateRequestMsg::Decode(request.Encode());
  ASSERT_TRUE(decoded_request.ok());
  EXPECT_EQ(decoded_request->query_id, 77u);

  LocateReplyMsg reply;
  reply.query_id = 77;
  reply.name = request.name;
  reply.host = 3;
  reply.active = true;
  reply.epoch = 987654321u;
  auto decoded_reply = LocateReplyMsg::Decode(reply.Encode());
  ASSERT_TRUE(decoded_reply.ok());
  EXPECT_TRUE(decoded_reply->active);
  EXPECT_EQ(decoded_reply->host, 3u);
  EXPECT_EQ(decoded_reply->epoch, 987654321u);
}

TEST(MessageTest, MoveTransferRoundTripCarriesEverything) {
  MoveTransferMsg msg;
  msg.transfer_id = 8;
  msg.source = 1;
  msg.name = ObjectName(1, 5, 6);
  msg.type_name = "std.mailbox";
  msg.representation = SampleRepresentation();
  msg.policy = CheckpointPolicy{2, ReliabilityLevel::kMirrored, 3};
  msg.frozen = true;

  Bytes encoded = msg.Encode();
  auto decoded = MoveTransferMsg::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type_name, "std.mailbox");
  EXPECT_EQ(decoded->representation, msg.representation);
  EXPECT_EQ(decoded->policy.level, ReliabilityLevel::kMirrored);
  EXPECT_EQ(decoded->policy.mirror_site, 3u);
  EXPECT_TRUE(decoded->frozen);
  ExpectPrefixRejection<MoveTransferMsg>(encoded);
}

TEST(MessageTest, MoveAckRoundTrip) {
  MoveAckMsg msg;
  msg.transfer_id = 11;
  msg.name = ObjectName(4, 4, 4);
  msg.accepted = true;
  msg.epoch = 42424242u;
  auto decoded = MoveAckMsg::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->accepted);
  EXPECT_EQ(decoded->epoch, 42424242u);
}

TEST(MessageTest, DirectoryMessagesRoundTrip) {
  DirectoryUpdateMsg update;
  update.name = ObjectName(6, 7, 8);
  update.host = 5;
  update.epoch = 0xdeadbeefULL;
  update.active = true;
  Bytes encoded = update.Encode();
  EXPECT_EQ(PeekMessageKind(encoded).value(), MessageKind::kDirectoryUpdate);
  auto decoded_update = DirectoryUpdateMsg::Decode(encoded);
  ASSERT_TRUE(decoded_update.ok());
  EXPECT_EQ(decoded_update->name, update.name);
  EXPECT_EQ(decoded_update->host, 5u);
  EXPECT_EQ(decoded_update->epoch, 0xdeadbeefULL);
  EXPECT_TRUE(decoded_update->active);
  EXPECT_FALSE(decoded_update->removal);
  ExpectPrefixRejection<DirectoryUpdateMsg>(encoded);

  DirectoryUpdateMsg removal;
  removal.name = update.name;
  removal.epoch = 99;
  removal.removal = true;
  auto decoded_removal = DirectoryUpdateMsg::Decode(removal.Encode());
  ASSERT_TRUE(decoded_removal.ok());
  EXPECT_TRUE(decoded_removal->removal);
  EXPECT_EQ(decoded_removal->epoch, 99u);

  DirectoryLookupMsg lookup;
  lookup.query_id = 31;
  lookup.reply_to = 2;
  lookup.name = update.name;
  lookup.avoid_hosts = {4, 12};
  Bytes lookup_encoded = lookup.Encode();
  EXPECT_EQ(PeekMessageKind(lookup_encoded).value(),
            MessageKind::kDirectoryLookup);
  auto decoded_lookup = DirectoryLookupMsg::Decode(lookup_encoded);
  ASSERT_TRUE(decoded_lookup.ok());
  EXPECT_EQ(decoded_lookup->query_id, 31u);
  EXPECT_EQ(decoded_lookup->reply_to, 2u);
  EXPECT_EQ(decoded_lookup->avoid_hosts, (std::vector<StationId>{4, 12}));
  ExpectPrefixRejection<DirectoryLookupMsg>(lookup_encoded);

  DirectoryReplyMsg reply;
  reply.query_id = 31;
  reply.name = update.name;
  reply.known = true;
  reply.host = 5;
  reply.epoch = 0xdeadbeefULL;
  reply.active = true;
  Bytes reply_encoded = reply.Encode();
  EXPECT_EQ(PeekMessageKind(reply_encoded).value(),
            MessageKind::kDirectoryReply);
  auto decoded_reply = DirectoryReplyMsg::Decode(reply_encoded);
  ASSERT_TRUE(decoded_reply.ok());
  EXPECT_TRUE(decoded_reply->known);
  EXPECT_EQ(decoded_reply->host, 5u);
  EXPECT_EQ(decoded_reply->epoch, 0xdeadbeefULL);
  EXPECT_TRUE(decoded_reply->active);
  ExpectPrefixRejection<DirectoryReplyMsg>(reply_encoded);
}

TEST(MessageTest, CheckpointMessagesRoundTrip) {
  CheckpointPutMsg put;
  put.request_id = 13;
  put.reply_to = 1;
  put.name = ObjectName(2, 3, 4);
  put.record = SharedBytes(ToBytes("record bytes"));
  put.is_mirror = true;
  put.delta_seq = 7;
  auto decoded_put = CheckpointPutMsg::Decode(put.Encode());
  ASSERT_TRUE(decoded_put.ok());
  EXPECT_TRUE(decoded_put->is_mirror);
  EXPECT_EQ(decoded_put->delta_seq, 7u);
  EXPECT_EQ(ToString(decoded_put->record.view()), "record bytes");

  CheckpointAckMsg ack;
  ack.request_id = 13;
  ack.ok = true;
  auto decoded_ack = CheckpointAckMsg::Decode(ack.Encode());
  ASSERT_TRUE(decoded_ack.ok());
  EXPECT_TRUE(decoded_ack->ok);

  CheckpointEraseMsg erase;
  erase.name = put.name;
  auto decoded_erase = CheckpointEraseMsg::Decode(erase.Encode());
  ASSERT_TRUE(decoded_erase.ok());
  EXPECT_EQ(decoded_erase->name, put.name);
}

TEST(MessageTest, ReplicaMessagesRoundTrip) {
  ReplicaFetchMsg fetch;
  fetch.request_id = 21;
  fetch.reply_to = 0;
  fetch.name = ObjectName(7, 8, 9);
  auto decoded_fetch = ReplicaFetchMsg::Decode(fetch.Encode());
  ASSERT_TRUE(decoded_fetch.ok());
  EXPECT_EQ(decoded_fetch->name, fetch.name);

  ReplicaReplyMsg reply;
  reply.request_id = 21;
  reply.name = fetch.name;
  reply.ok = true;
  reply.type_name = "std.data";
  reply.representation = SampleRepresentation();
  Bytes encoded = reply.Encode();
  auto decoded_reply = ReplicaReplyMsg::Decode(encoded);
  ASSERT_TRUE(decoded_reply.ok());
  EXPECT_EQ(decoded_reply->representation, reply.representation);
  ExpectPrefixRejection<ReplicaReplyMsg>(encoded);
}

TEST(MessageTest, PeekRejectsGarbage) {
  EXPECT_FALSE(PeekMessageKind(Bytes{}).ok());
  EXPECT_FALSE(PeekMessageKind(Bytes{0x00}).ok());
  EXPECT_FALSE(PeekMessageKind(Bytes{0xee, 0x01}).ok());
}

TEST(MessageTest, DecodersRejectWrongKind) {
  LocateRequestMsg locate;
  locate.query_id = 1;
  locate.reply_to = 0;
  locate.name = ObjectName(1, 1, 1);
  Bytes encoded = locate.Encode();
  EXPECT_FALSE(InvokeRequestMsg::Decode(encoded).ok());
  EXPECT_FALSE(MoveAckMsg::Decode(encoded).ok());
}

TEST(MessageTest, CheckpointPolicyRejectsBadLevel) {
  BufferWriter writer;
  writer.WriteU32(1);
  writer.WriteU8(99);  // invalid ReliabilityLevel
  writer.WriteU32(2);
  BufferReader reader(writer.buffer());
  EXPECT_FALSE(CheckpointPolicy::Decode(reader).ok());
}

}  // namespace
}  // namespace eden
