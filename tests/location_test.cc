// Tests for paper section 4.3: the node abstraction, object location,
// mobility (move), and frozen-object replication/caching — plus the
// partitioned directory backend of DESIGN.md §13 (homes, epochs, stale
// forwarding, crash reconstruction, broadcast/directory equivalence).
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "src/trace/span.h"
#include "tests/test_util.h"

namespace eden {
namespace {

// A counter type extended with a "move_to" operation that relocates the
// object, and a "freeze" operation.
std::shared_ptr<TypeManager> MakeMobileCounterType() {
  auto type = MakeCounterType();
  type->AddOperation(OperationSpec{
      .name = "move_to",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto station = ctx.args().U64At(0);
        if (!station.ok()) {
          co_return InvokeResult::Error(station.status());
        }
        Status status =
            co_await ctx.RequestMove(static_cast<StationId>(*station));
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kMove),
  });
  type->AddOperation(OperationSpec{
      .name = "freeze",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult{ctx.Freeze(), {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kOwner),
  });
  type->AddOperation(OperationSpec{
      .name = "destroy",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        ctx.Destroy();
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kDestroy),
  });
  type->AddOperation(OperationSpec{
      .name = "where",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(ctx.node()));
      },
      .required_rights = Rights(Rights::kInvoke),
      .read_only = true,
  });
  return type;
}

class LocationFixture : public ::testing::Test {
 protected:
  LocationFixture() {
    system_.RegisterType(MakeMobileCounterType());
    system_.AddNodes(5);
  }

  InvokeResult Call(NodeKernel& from, const Capability& cap, const std::string& op,
                    InvokeArgs args = {}) {
    return system_.Await(from.Invoke(cap, op, std::move(args)));
  }

  EdenSystem system_;
};

TEST_F(LocationFixture, MoveRelocatesTheObject) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(5));

  InvokeResult result = Call(
      system_.node(0), *cap, "move_to",
      InvokeArgs{}.AddU64(system_.node(2).station()));
  ASSERT_TRUE(result.ok()) << result.status;
  system_.RunFor(Milliseconds(10));

  EXPECT_FALSE(system_.node(0).IsActive(cap->name()));
  EXPECT_TRUE(system_.node(2).IsActive(cap->name()));

  // State travelled with the object.
  result = Call(system_.node(3), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 5u);
  result = Call(system_.node(3), *cap, "where");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), system_.node(2).station());
}

TEST_F(LocationFixture, StaleCacheIsHealedByForwarding) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  // Prime node 4's location cache.
  ASSERT_TRUE(Call(system_.node(4), *cap, "increment").ok());
  // Move the object away.
  ASSERT_TRUE(Call(system_.node(0), *cap, "move_to",
                   InvokeArgs{}.AddU64(system_.node(1).station()))
                  .ok());
  system_.RunFor(Milliseconds(10));

  // Node 4 still points at node 0; the invocation follows the forwarding
  // address transparently.
  uint64_t redirects_before = system_.node(4).stats().redirects_followed;
  InvokeResult result = Call(system_.node(4), *cap, "increment");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 2u);
  EXPECT_GT(system_.node(4).stats().redirects_followed, redirects_before);

  // The healed cache goes straight to node 1 now.
  uint64_t redirects_after = system_.node(4).stats().redirects_followed;
  ASSERT_TRUE(Call(system_.node(4), *cap, "increment").ok());
  EXPECT_EQ(system_.node(4).stats().redirects_followed, redirects_after);
}

TEST_F(LocationFixture, ChainedMovesAreFollowed) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(4), *cap, "increment").ok());  // prime cache

  // Move 0 -> 1 -> 2 -> 3.
  for (size_t hop = 1; hop <= 3; hop++) {
    ASSERT_TRUE(Call(system_.node(0), *cap, "move_to",
                     InvokeArgs{}.AddU64(system_.node(hop).station()))
                    .ok());
    system_.RunFor(Milliseconds(10));
  }
  EXPECT_TRUE(system_.node(3).IsActive(cap->name()));

  InvokeResult result = Call(system_.node(4), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 1u);
}

TEST_F(LocationFixture, MoveToUnreachableNodeAbortsAndRecovers) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(3));
  system_.node(2).FailNode();

  InvokeResult result = Call(
      system_.node(0), *cap, "move_to",
      InvokeArgs{}.AddU64(system_.node(2).station()));
  EXPECT_FALSE(result.ok());

  // The object still serves at its original home.
  EXPECT_TRUE(system_.node(0).IsActive(cap->name()));
  result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 3u);
}

TEST_F(LocationFixture, MoveWaitsForRunningInvocationsToDrain) {
  // A slow operation is in flight when the move is requested; the move only
  // completes after it drains, and the slow invocation still gets its reply.
  auto type = std::make_shared<TypeManager>("slowpoke");
  size_t parallel = type->AddClass("parallel", 4);
  type->AddOperation(OperationSpec{
      .name = "slow",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_await ctx.Sleep(Milliseconds(200));
        co_return InvokeResult::Ok(InvokeArgs{}.AddString("slept"));
      },
      .invocation_class = parallel,
  });
  type->AddOperation(OperationSpec{
      .name = "go",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto station = ctx.args().U64At(0);
        Status status =
            co_await ctx.RequestMove(static_cast<StationId>(*station));
        co_return InvokeResult{status, {}};
      },
      .invocation_class = parallel,
  });
  system_.RegisterType(type);

  auto cap = system_.node(0).CreateObject("slowpoke", Representation{});
  ASSERT_TRUE(cap.ok());
  Future<InvokeResult> slow = system_.node(1).Invoke(*cap, "slow");
  system_.RunFor(Milliseconds(20));  // let it start
  Future<InvokeResult> move = system_.node(1).Invoke(
      *cap, "go", InvokeArgs{}.AddU64(system_.node(2).station()));

  InvokeResult slow_result = system_.Await(std::move(slow));
  EXPECT_TRUE(slow_result.ok()) << slow_result.status;
  EXPECT_EQ(slow_result.results.StringAt(0).value(), "slept");
  InvokeResult move_result = system_.Await(std::move(move));
  EXPECT_TRUE(move_result.ok()) << move_result.status;
  system_.RunFor(Milliseconds(10));
  EXPECT_TRUE(system_.node(2).IsActive(cap->name()));
}

TEST_F(LocationFixture, FrozenObjectRejectsMutation) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(9));
  ASSERT_TRUE(Call(system_.node(0), *cap, "freeze").ok());

  InvokeResult result = Call(system_.node(0), *cap, "increment");
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
  result = Call(system_.node(0), *cap, "read");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 9u);
}

TEST_F(LocationFixture, FrozenObjectIsCachedAndServedLocally) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(9));
  ASSERT_TRUE(Call(system_.node(0), *cap, "freeze").ok());

  // First remote read announces "frozen"; the invoking kernel caches a
  // replica in the background.
  InvokeResult result = Call(system_.node(3), *cap, "read");
  ASSERT_TRUE(result.ok());
  system_.RunFor(Milliseconds(50));
  EXPECT_TRUE(system_.node(3).HasReplica(cap->name()));

  // Subsequent reads are served from the local replica: no remote traffic.
  uint64_t remote_before = system_.node(3).stats().invocations_remote;
  uint64_t replica_reads_before = system_.node(3).stats().replica_reads;
  result = Call(system_.node(3), *cap, "read");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 9u);
  EXPECT_EQ(system_.node(3).stats().invocations_remote, remote_before);
  EXPECT_GT(system_.node(3).stats().replica_reads, replica_reads_before);
}

TEST_F(LocationFixture, ReplicaDoesNotServeMutations) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "freeze").ok());
  Call(system_.node(3), *cap, "read");
  system_.RunFor(Milliseconds(50));
  ASSERT_TRUE(system_.node(3).HasReplica(cap->name()));

  // A mutating operation is routed to the (frozen) authoritative copy and
  // refused there, not silently applied to the replica.
  InvokeResult result = Call(system_.node(3), *cap, "increment");
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(LocationFixture, PartitionMakesObjectUnavailableThenHeals) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(3), *cap, "increment").ok());

  // Partition node 3 away from node 0.
  system_.lan().SetPartitionGroup(system_.node(3).station(), 1);
  InvokeResult result = system_.Await(
      system_.node(3).Invoke(*cap, "read", {}, InvokeOptions::WithTimeout(Milliseconds(500))));
  EXPECT_FALSE(result.ok());

  system_.lan().ClearPartitions();
  result = Call(system_.node(3), *cap, "read");
  EXPECT_TRUE(result.ok()) << result.status;
}

// --- Partitioned directory (DESIGN.md §13) ---------------------------------

TEST_F(LocationFixture, DirectoryHomeTracksResidenceAcrossMoves) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  const ObjectName& name = cap->name();

  // All nodes agree on the home, and creation already registered there.
  std::vector<StationId> homes = system_.node(0).location().HomesOf(name);
  ASSERT_EQ(homes.size(), 1u);
  EXPECT_EQ(homes, system_.node(3).location().HomesOf(name));
  NodeKernel* home = system_.NodeAt(homes[0]);
  ASSERT_NE(home, nullptr);
  system_.RunFor(Milliseconds(5));  // let the creation update land
  const ResidenceRecord* entry = home->location().DirectoryEntry(name);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->host, system_.node(0).station());
  EXPECT_TRUE(entry->active);
  uint64_t create_epoch = entry->epoch;
  EXPECT_GT(create_epoch, 0u);

  // After a move the home points at the destination with a newer epoch.
  ASSERT_TRUE(Call(system_.node(0), *cap, "move_to",
                   InvokeArgs{}.AddU64(system_.node(2).station()))
                  .ok());
  system_.RunFor(Milliseconds(10));
  entry = home->location().DirectoryEntry(name);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->host, system_.node(2).station());
  EXPECT_GT(entry->epoch, create_epoch);

  // A cold invoker resolves through the home — one directory query, no
  // broadcast — and lands directly on the new host.
  size_t cold = 4;
  if (homes[0] == system_.node(cold).station()) {
    cold = 3;  // don't pick the home itself: its lookup is purely local
  }
  InvokeResult result = Call(system_.node(cold), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  const MetricsRegistry& m = system_.node(cold).metrics();
  EXPECT_EQ(m.CounterValue("kernel.locate.queries.directory"), 1u);
  EXPECT_EQ(m.CounterValue("kernel.locate.queries.broadcast"), 0u);
  EXPECT_EQ(m.CounterValue("kernel.directory.fallbacks"), 0u);

  // Destruction leaves a tombstone: the home forgets the record.
  ASSERT_TRUE(Call(system_.node(2), *cap, "destroy").ok());
  system_.RunFor(Milliseconds(10));
  EXPECT_EQ(home->location().DirectoryEntry(name), nullptr);
}

TEST_F(LocationFixture, StaleHostForwardsWithVersionedHint) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  // Prime node 4's cache at the old residence, then move the object away.
  ASSERT_TRUE(Call(system_.node(4), *cap, "increment").ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "move_to",
                   InvokeArgs{}.AddU64(system_.node(1).station()))
                  .ok());
  system_.RunFor(Milliseconds(10));

  // The stale invocation lands on node 0, which answers with a
  // version-stamped forward hint instead of re-broadcasting.
  uint64_t stale_before = system_.node(0).stats().directory_stale_forwards;
  InvokeResult result = Call(system_.node(4), *cap, "increment");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 2u);
  EXPECT_GT(system_.node(0).stats().directory_stale_forwards, stale_before);
  // Following the hint required no extra locate round on the invoker.
  EXPECT_LE(system_.node(4).stats().locate_queries, 1u);
}

TEST_F(LocationFixture, StaleEpochUpdateIsRejectedByTheHome) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  const ObjectName& name = cap->name();
  system_.RunFor(Milliseconds(5));
  NodeKernel* home = system_.NodeAt(system_.node(0).location().HomesOf(name)[0]);
  ASSERT_NE(home, nullptr);
  const ResidenceRecord* entry = home->location().DirectoryEntry(name);
  ASSERT_NE(entry, nullptr);
  uint64_t fresh_epoch = entry->epoch;
  uint64_t stale_before =
      home->metrics().CounterValue("kernel.directory.stale_updates");

  // A delayed update from an older residence (epoch behind) must not clobber
  // the newer record.
  DirectoryUpdateMsg stale;
  stale.name = name;
  stale.host = system_.node(3).station();
  stale.epoch = fresh_epoch - 1;
  stale.active = true;
  home->location().HandleDirectoryUpdate(system_.node(3).station(), stale);
  entry = home->location().DirectoryEntry(name);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->host, system_.node(0).station());
  EXPECT_EQ(entry->epoch, fresh_epoch);
  EXPECT_EQ(home->metrics().CounterValue("kernel.directory.stale_updates"),
            stale_before + 1);

  // Same epoch but passive also loses to the active record.
  DirectoryUpdateMsg passive;
  passive.name = name;
  passive.host = system_.node(3).station();
  passive.epoch = fresh_epoch;
  passive.active = false;
  home->location().HandleDirectoryUpdate(system_.node(3).station(), passive);
  EXPECT_EQ(home->location().DirectoryEntry(name)->host,
            system_.node(0).station());

  // A removal tombstone older than the record is ignored too.
  DirectoryUpdateMsg tombstone;
  tombstone.name = name;
  tombstone.epoch = fresh_epoch - 1;
  tombstone.removal = true;
  home->location().HandleDirectoryUpdate(system_.node(3).station(), tombstone);
  EXPECT_NE(home->location().DirectoryEntry(name), nullptr);
}

TEST_F(LocationFixture, HomeCrashFallsBackAndReconstructsTheDirectory) {
  // Pick an object whose home is neither its host (node 0) nor the invokers
  // (nodes 3 and 4), so killing the home hits only the directory.
  Capability cap;
  NodeKernel* home = nullptr;
  for (int attempt = 0; attempt < 32; attempt++) {
    auto candidate = system_.node(0).CreateObject("counter", CounterRep());
    ASSERT_TRUE(candidate.ok());
    StationId home_station =
        system_.node(0).location().HomesOf(candidate->name())[0];
    if (home_station != system_.node(0).station() &&
        home_station != system_.node(3).station() &&
        home_station != system_.node(4).station()) {
      cap = *candidate;
      home = system_.NodeAt(home_station);
      break;
    }
  }
  ASSERT_NE(home, nullptr) << "no name hashed to nodes 1/2 in 32 tries";
  system_.RunFor(Milliseconds(5));
  ASSERT_NE(home->location().DirectoryEntry(cap.name()), nullptr);

  // Home dies, taking its partition with it. A cold invoker's lookup round
  // times out, falls back to one broadcast, and still resolves.
  home->FailNode();
  InvokeResult result = Call(system_.node(3), cap, "increment");
  ASSERT_TRUE(result.ok()) << result.status;
  const MetricsRegistry& m3 = system_.node(3).metrics();
  EXPECT_GE(m3.CounterValue("kernel.directory.fallbacks"), 1u);
  EXPECT_GE(m3.CounterValue("kernel.locate.queries.broadcast"), 1u);

  // After the home restarts (empty partition), the next fallback pushes the
  // learned residence back: the directory reconstructs itself lazily from
  // the host's own inventory.
  home->RestartNode();
  EXPECT_EQ(home->location().directory_entries(), 0u);
  result = Call(system_.node(4), cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_GE(system_.node(4).metrics().CounterValue("kernel.directory.repairs"),
            1u);
  system_.RunFor(Milliseconds(10));
  const ResidenceRecord* entry = home->location().DirectoryEntry(cap.name());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->host, system_.node(0).station());

  // And with the directory healed, a third cold node needs no fallback.
  InvokeResult healed = Call(system_.node(1), cap, "read");
  if (home != &system_.node(1)) {
    ASSERT_TRUE(healed.ok()) << healed.status;
    EXPECT_EQ(system_.node(1).metrics().CounterValue(
                  "kernel.directory.fallbacks"),
              0u);
  }
}

TEST_F(LocationFixture, RestartRepublishHealsTheDirectoryWithoutFallback) {
  // An object hosted (and checkpointed) on node 0 whose directory home is a
  // different node — and neither is node 3, the cold invoker at the end.
  Capability cap;
  NodeKernel* home = nullptr;
  for (int attempt = 0; attempt < 32; attempt++) {
    auto candidate = system_.node(0).CreateObject("counter", CounterRep());
    ASSERT_TRUE(candidate.ok());
    StationId home_station =
        system_.node(0).location().HomesOf(candidate->name())[0];
    if (home_station != system_.node(0).station() &&
        home_station != system_.node(3).station()) {
      cap = *candidate;
      home = system_.NodeAt(home_station);
      break;
    }
  }
  ASSERT_NE(home, nullptr) << "no name hashed away from nodes 0/3 in 32 tries";
  ASSERT_TRUE(system_.Await(system_.node(0).CheckpointObject(cap.name())).ok());
  system_.RunFor(Milliseconds(5));

  // Host and directory home both die: the record is gone with the home's
  // partition, and the host's active copy is gone with the host.
  home->FailNode();
  system_.node(0).FailNode();
  home->RestartNode();
  ASSERT_EQ(home->location().directory_entries(), 0u);

  // The host's restart proactively re-publishes a passive residence record
  // for every checkpoint base in its store — the directory heals without
  // waiting for a locate to miss first.
  system_.node(0).RestartNode();
  system_.RunFor(Milliseconds(10));
  const ResidenceRecord* entry = home->location().DirectoryEntry(cap.name());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->host, system_.node(0).station());
  EXPECT_FALSE(entry->active);

  // So a cold invoker resolves through the directory alone: one lookup, no
  // broadcast fallback round.
  InvokeResult result = Call(system_.node(3), cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  const MetricsRegistry& m3 = system_.node(3).metrics();
  EXPECT_EQ(m3.CounterValue("kernel.directory.fallbacks"), 0u);
  EXPECT_EQ(m3.CounterValue("kernel.locate.queries.broadcast"), 0u);
}

// One workload, both backends: same results, and per-seed deterministic
// digests whether or not a span collector is attached.
uint64_t RunLocateWorkload(uint64_t seed, LocationBackend backend,
                           bool traced) {
  SystemConfig config;
  config.seed = seed;
  config.kernel.locate.backend = backend;
  SpanCollector spans;
  EdenSystem system(config);
  if (traced) {
    system.set_span_collector(&spans);
  }
  system.RegisterType(MakeMobileCounterType());
  system.AddNodes(6);

  std::vector<Capability> caps;
  for (int i = 0; i < 4; i++) {
    auto cap = system.node(static_cast<size_t>(i) % 3).CreateObject(
        "counter", CounterRep());
    EXPECT_TRUE(cap.ok());
    caps.push_back(*cap);
  }
  uint64_t total = 0;
  for (int round = 0; round < 6; round++) {
    for (size_t i = 0; i < caps.size(); i++) {
      size_t invoker = (static_cast<size_t>(round) + i) % 6;
      InvokeResult result =
          system.Await(system.node(invoker).Invoke(caps[i], "increment"));
      EXPECT_TRUE(result.ok()) << result.status;
      total += result.results.U64At(0).value();
    }
    // Keep caches and the directory churning.
    size_t mover = static_cast<size_t>(round) % caps.size();
    system.Await(system.node(5).Invoke(
        caps[mover], "move_to",
        InvokeArgs{}.AddU64(
            system.node(static_cast<size_t>(round + 1) % 6).station())));
    system.RunFor(Milliseconds(10));
  }
  Digest digest;
  digest.Mix(system.sim().trace().value());
  digest.Mix(system.sim().events_executed());
  digest.Mix(total);
  for (size_t n = 0; n < system.node_count(); n++) {
    digest.Mix(system.node(n).stats().locate_queries);
    digest.Mix(system.node(n).stats().directory_updates);
  }
  return digest.value();
}

TEST_F(LocationFixture, BackendsAgreeAndDigestsAreSeedStable) {
  for (uint64_t seed : {7ull, 1981ull}) {
    // Same seed, same backend: bit-identical executions, traced or not.
    uint64_t directory =
        RunLocateWorkload(seed, LocationBackend::kDirectory, false);
    EXPECT_EQ(directory,
              RunLocateWorkload(seed, LocationBackend::kDirectory, false));
    EXPECT_EQ(directory,
              RunLocateWorkload(seed, LocationBackend::kDirectory, true));
    uint64_t broadcast =
        RunLocateWorkload(seed, LocationBackend::kBroadcast, false);
    EXPECT_EQ(broadcast,
              RunLocateWorkload(seed, LocationBackend::kBroadcast, false));
    EXPECT_EQ(broadcast,
              RunLocateWorkload(seed, LocationBackend::kBroadcast, true));
    // The backends do different wire work, so their digests differ — the
    // equality checks above are not vacuous.
    EXPECT_NE(directory, broadcast);
  }
}

TEST_F(LocationFixture, InvocationClassLimitSerializesWriters) {
  // Two slow writers on a limit-1 class must not overlap; with a limit-4
  // class they do. We detect overlap through virtual completion times.
  auto type = std::make_shared<TypeManager>("serialized");
  type->AddOperation(OperationSpec{
      .name = "work",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_await ctx.Sleep(Milliseconds(100));
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(
            static_cast<uint64_t>(ctx.sim().now())));
      },
  });  // default class, limit 1
  system_.RegisterType(type);
  auto cap = system_.node(0).CreateObject("serialized", Representation{});
  ASSERT_TRUE(cap.ok());

  Future<InvokeResult> first = system_.node(1).Invoke(*cap, "work");
  Future<InvokeResult> second = system_.node(2).Invoke(*cap, "work");
  InvokeResult r1 = system_.Await(std::move(first));
  InvokeResult r2 = system_.Await(std::move(second));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  int64_t t1 = static_cast<int64_t>(r1.results.U64At(0).value());
  int64_t t2 = static_cast<int64_t>(r2.results.U64At(0).value());
  // Completions at least one full work-period apart: strictly serialized.
  EXPECT_GE(std::abs(t2 - t1), Milliseconds(100));
}

}  // namespace
}  // namespace eden
