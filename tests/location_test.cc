// Tests for paper section 4.3: the node abstraction, object location,
// mobility (move), and frozen-object replication/caching.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "tests/test_util.h"

namespace eden {
namespace {

// A counter type extended with a "move_to" operation that relocates the
// object, and a "freeze" operation.
std::shared_ptr<TypeManager> MakeMobileCounterType() {
  auto type = MakeCounterType();
  type->AddOperation(OperationSpec{
      .name = "move_to",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto station = ctx.args().U64At(0);
        if (!station.ok()) {
          co_return InvokeResult::Error(station.status());
        }
        Status status =
            co_await ctx.RequestMove(static_cast<StationId>(*station));
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kMove),
  });
  type->AddOperation(OperationSpec{
      .name = "freeze",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult{ctx.Freeze(), {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kOwner),
  });
  type->AddOperation(OperationSpec{
      .name = "where",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(ctx.node()));
      },
      .required_rights = Rights(Rights::kInvoke),
      .read_only = true,
  });
  return type;
}

class LocationFixture : public ::testing::Test {
 protected:
  LocationFixture() {
    system_.RegisterType(MakeMobileCounterType());
    system_.AddNodes(5);
  }

  InvokeResult Call(NodeKernel& from, const Capability& cap, const std::string& op,
                    InvokeArgs args = {}) {
    return system_.Await(from.Invoke(cap, op, std::move(args)));
  }

  EdenSystem system_;
};

TEST_F(LocationFixture, MoveRelocatesTheObject) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(5));

  InvokeResult result = Call(
      system_.node(0), *cap, "move_to",
      InvokeArgs{}.AddU64(system_.node(2).station()));
  ASSERT_TRUE(result.ok()) << result.status;
  system_.RunFor(Milliseconds(10));

  EXPECT_FALSE(system_.node(0).IsActive(cap->name()));
  EXPECT_TRUE(system_.node(2).IsActive(cap->name()));

  // State travelled with the object.
  result = Call(system_.node(3), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 5u);
  result = Call(system_.node(3), *cap, "where");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), system_.node(2).station());
}

TEST_F(LocationFixture, StaleCacheIsHealedByForwarding) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  // Prime node 4's location cache.
  ASSERT_TRUE(Call(system_.node(4), *cap, "increment").ok());
  // Move the object away.
  ASSERT_TRUE(Call(system_.node(0), *cap, "move_to",
                   InvokeArgs{}.AddU64(system_.node(1).station()))
                  .ok());
  system_.RunFor(Milliseconds(10));

  // Node 4 still points at node 0; the invocation follows the forwarding
  // address transparently.
  uint64_t redirects_before = system_.node(4).stats().redirects_followed;
  InvokeResult result = Call(system_.node(4), *cap, "increment");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 2u);
  EXPECT_GT(system_.node(4).stats().redirects_followed, redirects_before);

  // The healed cache goes straight to node 1 now.
  uint64_t redirects_after = system_.node(4).stats().redirects_followed;
  ASSERT_TRUE(Call(system_.node(4), *cap, "increment").ok());
  EXPECT_EQ(system_.node(4).stats().redirects_followed, redirects_after);
}

TEST_F(LocationFixture, ChainedMovesAreFollowed) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(4), *cap, "increment").ok());  // prime cache

  // Move 0 -> 1 -> 2 -> 3.
  for (size_t hop = 1; hop <= 3; hop++) {
    ASSERT_TRUE(Call(system_.node(0), *cap, "move_to",
                     InvokeArgs{}.AddU64(system_.node(hop).station()))
                    .ok());
    system_.RunFor(Milliseconds(10));
  }
  EXPECT_TRUE(system_.node(3).IsActive(cap->name()));

  InvokeResult result = Call(system_.node(4), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 1u);
}

TEST_F(LocationFixture, MoveToUnreachableNodeAbortsAndRecovers) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(3));
  system_.node(2).FailNode();

  InvokeResult result = Call(
      system_.node(0), *cap, "move_to",
      InvokeArgs{}.AddU64(system_.node(2).station()));
  EXPECT_FALSE(result.ok());

  // The object still serves at its original home.
  EXPECT_TRUE(system_.node(0).IsActive(cap->name()));
  result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 3u);
}

TEST_F(LocationFixture, MoveWaitsForRunningInvocationsToDrain) {
  // A slow operation is in flight when the move is requested; the move only
  // completes after it drains, and the slow invocation still gets its reply.
  auto type = std::make_shared<TypeManager>("slowpoke");
  size_t parallel = type->AddClass("parallel", 4);
  type->AddOperation(OperationSpec{
      .name = "slow",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_await ctx.Sleep(Milliseconds(200));
        co_return InvokeResult::Ok(InvokeArgs{}.AddString("slept"));
      },
      .invocation_class = parallel,
  });
  type->AddOperation(OperationSpec{
      .name = "go",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto station = ctx.args().U64At(0);
        Status status =
            co_await ctx.RequestMove(static_cast<StationId>(*station));
        co_return InvokeResult{status, {}};
      },
      .invocation_class = parallel,
  });
  system_.RegisterType(type);

  auto cap = system_.node(0).CreateObject("slowpoke", Representation{});
  ASSERT_TRUE(cap.ok());
  Future<InvokeResult> slow = system_.node(1).Invoke(*cap, "slow");
  system_.RunFor(Milliseconds(20));  // let it start
  Future<InvokeResult> move = system_.node(1).Invoke(
      *cap, "go", InvokeArgs{}.AddU64(system_.node(2).station()));

  InvokeResult slow_result = system_.Await(std::move(slow));
  EXPECT_TRUE(slow_result.ok()) << slow_result.status;
  EXPECT_EQ(slow_result.results.StringAt(0).value(), "slept");
  InvokeResult move_result = system_.Await(std::move(move));
  EXPECT_TRUE(move_result.ok()) << move_result.status;
  system_.RunFor(Milliseconds(10));
  EXPECT_TRUE(system_.node(2).IsActive(cap->name()));
}

TEST_F(LocationFixture, FrozenObjectRejectsMutation) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(9));
  ASSERT_TRUE(Call(system_.node(0), *cap, "freeze").ok());

  InvokeResult result = Call(system_.node(0), *cap, "increment");
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
  result = Call(system_.node(0), *cap, "read");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 9u);
}

TEST_F(LocationFixture, FrozenObjectIsCachedAndServedLocally) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(9));
  ASSERT_TRUE(Call(system_.node(0), *cap, "freeze").ok());

  // First remote read announces "frozen"; the invoking kernel caches a
  // replica in the background.
  InvokeResult result = Call(system_.node(3), *cap, "read");
  ASSERT_TRUE(result.ok());
  system_.RunFor(Milliseconds(50));
  EXPECT_TRUE(system_.node(3).HasReplica(cap->name()));

  // Subsequent reads are served from the local replica: no remote traffic.
  uint64_t remote_before = system_.node(3).stats().invocations_remote;
  uint64_t replica_reads_before = system_.node(3).stats().replica_reads;
  result = Call(system_.node(3), *cap, "read");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 9u);
  EXPECT_EQ(system_.node(3).stats().invocations_remote, remote_before);
  EXPECT_GT(system_.node(3).stats().replica_reads, replica_reads_before);
}

TEST_F(LocationFixture, ReplicaDoesNotServeMutations) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "freeze").ok());
  Call(system_.node(3), *cap, "read");
  system_.RunFor(Milliseconds(50));
  ASSERT_TRUE(system_.node(3).HasReplica(cap->name()));

  // A mutating operation is routed to the (frozen) authoritative copy and
  // refused there, not silently applied to the replica.
  InvokeResult result = Call(system_.node(3), *cap, "increment");
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(LocationFixture, PartitionMakesObjectUnavailableThenHeals) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(3), *cap, "increment").ok());

  // Partition node 3 away from node 0.
  system_.lan().SetPartitionGroup(system_.node(3).station(), 1);
  InvokeResult result = system_.Await(
      system_.node(3).Invoke(*cap, "read", {}, InvokeOptions::WithTimeout(Milliseconds(500))));
  EXPECT_FALSE(result.ok());

  system_.lan().ClearPartitions();
  result = Call(system_.node(3), *cap, "read");
  EXPECT_TRUE(result.ok()) << result.status;
}

TEST_F(LocationFixture, InvocationClassLimitSerializesWriters) {
  // Two slow writers on a limit-1 class must not overlap; with a limit-4
  // class they do. We detect overlap through virtual completion times.
  auto type = std::make_shared<TypeManager>("serialized");
  type->AddOperation(OperationSpec{
      .name = "work",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_await ctx.Sleep(Milliseconds(100));
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(
            static_cast<uint64_t>(ctx.sim().now())));
      },
  });  // default class, limit 1
  system_.RegisterType(type);
  auto cap = system_.node(0).CreateObject("serialized", Representation{});
  ASSERT_TRUE(cap.ok());

  Future<InvokeResult> first = system_.node(1).Invoke(*cap, "work");
  Future<InvokeResult> second = system_.node(2).Invoke(*cap, "work");
  InvokeResult r1 = system_.Await(std::move(first));
  InvokeResult r2 = system_.Await(std::move(second));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  int64_t t1 = static_cast<int64_t>(r1.results.U64At(0).value());
  int64_t t2 = static_cast<int64_t>(r2.results.U64At(0).value());
  // Completions at least one full work-period apart: strictly serialized.
  EXPECT_GE(std::abs(t2 - t1), Milliseconds(100));
}

}  // namespace
}  // namespace eden
