// Tests for the foreign-machine gateway (paper section 2: foreign machines
// are reached through an "object-like" interface, asymmetrically).
#include <gtest/gtest.h>

#include "src/gateway/gateway.h"
#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

class GatewayFixture : public ::testing::Test {
 protected:
  GatewayFixture() {
    RegisterStandardTypes(system_);
    system_.AddNodes(3);
    host_ = std::make_shared<ForeignMachine>(system_.sim(), "vax1");
    host_->InstallService("echo", [](const std::string& payload) {
      return StatusOr<std::string>("echo: " + payload);
    });
    host_->InstallService("upcase", [](const std::string& payload) {
      std::string out = payload;
      for (char& c : out) {
        c = static_cast<char>(::toupper(c));
      }
      return StatusOr<std::string>(std::move(out));
    });
  }

  EdenSystem system_;
  std::shared_ptr<ForeignMachine> host_;
};

TEST_F(GatewayFixture, ForeignMachineServesRequestsFcfs) {
  auto first = host_->Submit("echo one");
  auto second = host_->Submit("echo two");
  system_.sim().Run();
  ASSERT_TRUE(first.ready());
  ASSERT_TRUE(second.ready());
  EXPECT_EQ(first.Get().value(), "echo: one");
  EXPECT_EQ(second.Get().value(), "echo: two");
  EXPECT_EQ(host_->requests_served(), 2u);
}

TEST_F(GatewayFixture, ForeignMachineUnknownServiceFails) {
  auto reply = host_->Submit("fortran compile.f");
  system_.sim().Run();
  ASSERT_TRUE(reply.ready());
  EXPECT_EQ(reply.Get().status().code(), StatusCode::kNotFound);
}

TEST_F(GatewayFixture, ForeignMachineChargesLinkAndServiceTime) {
  SimTime start = system_.sim().now();
  auto reply = host_->Submit("echo hi");
  system_.sim().RunWhile([&] { return !reply.ready(); });
  SimDuration elapsed = system_.sim().now() - start;
  // 7 bytes at 960 B/s ≈ 7.3 ms out, 50 ms service, ~8.6 ms response back.
  EXPECT_GT(elapsed, Milliseconds(55));
  EXPECT_LT(elapsed, Milliseconds(120));
}

TEST_F(GatewayFixture, PowerCycleFailsQueuedJobs) {
  auto doomed = host_->Submit("echo doomed");
  host_->PowerCycle();
  system_.sim().Run();
  ASSERT_TRUE(doomed.ready());
  EXPECT_EQ(doomed.Get().status().code(), StatusCode::kUnavailable);
  // The machine serves again after the cycle.
  auto ok = host_->Submit("echo back");
  system_.sim().Run();
  EXPECT_TRUE(ok.Get().ok());
}

TEST_F(GatewayFixture, GatewayObjectRelaysInvocationsFromAnyNode) {
  auto gateway = AttachForeignMachine(system_, 0, host_);
  ASSERT_TRUE(gateway.ok());
  // Node 2 reaches the VAX through ordinary object invocation.
  InvokeResult result = system_.Await(system_.node(2).Invoke(
      *gateway, "submit", InvokeArgs{}.AddString("upcase").AddString("hello")));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.StringAt(0).value(), "HELLO");
}

TEST_F(GatewayFixture, GatewayStatusReportsHost) {
  auto gateway = AttachForeignMachine(system_, 0, host_);
  ASSERT_TRUE(gateway.ok());
  InvokeResult result = system_.Await(system_.node(1).Invoke(*gateway, "status"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.StringAt(0).value(), "vax1");
}

TEST_F(GatewayFixture, GatewayIsPinnedToItsLinkNode) {
  auto gateway = AttachForeignMachine(system_, 0, host_);
  ASSERT_TRUE(gateway.ok());
  InvokeResult result = system_.Await(system_.node(1).Invoke(
      *gateway, "move_to", InvokeArgs{}.AddU64(system_.node(2).station())));
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(system_.node(0).IsActive(gateway->name()));
}

TEST_F(GatewayFixture, GatewayRespectsRights) {
  auto gateway = AttachForeignMachine(system_, 0, host_);
  ASSERT_TRUE(gateway.ok());
  Capability status_only =
      gateway->Restrict(Rights(Rights::kInvoke | Rights::kRead));
  InvokeResult result = system_.Await(system_.node(1).Invoke(
      status_only, "submit", InvokeArgs{}.AddString("echo").AddString("nope")));
  EXPECT_EQ(result.status.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(system_.Await(system_.node(1).Invoke(status_only, "status")).ok());
}

TEST_F(GatewayFixture, ConcurrentSubmissionsQueueAtTheHost) {
  auto gateway = AttachForeignMachine(system_, 0, host_);
  ASSERT_TRUE(gateway.ok());
  std::vector<Future<InvokeResult>> replies;
  for (int i = 0; i < 6; i++) {
    replies.push_back(system_.node(1 + i % 2).Invoke(
        *gateway, "submit",
        InvokeArgs{}.AddString("echo").AddString(std::to_string(i))));
  }
  int ok_count = 0;
  for (auto& reply : replies) {
    if (system_.Await(std::move(reply)).ok()) {
      ok_count++;
    }
  }
  EXPECT_EQ(ok_count, 6);
  EXPECT_EQ(host_->requests_served(), 6u);
}

}  // namespace
}  // namespace eden
