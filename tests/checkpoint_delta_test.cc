// Delta-checkpoint tests (DESIGN.md §10): chain growth, compaction,
// byte-for-byte equivalence with full-record checkpoints across crash and
// reincarnation, mirrored chains, and the move/remote-checksite paths.
#include <gtest/gtest.h>

#include <string>

#include "src/kernel/eden_system.h"
#include "tests/test_util.h"

namespace eden {
namespace {

std::string BaseKey(const Capability& cap) { return "ckpt/" + cap.name().ToKey(); }
std::string MirrorBaseKey(const Capability& cap) {
  return "mirror/" + cap.name().ToKey();
}
std::string DeltaKey(const Capability& cap, uint64_t k) {
  return BaseKey(cap) + "#d" + std::to_string(k);
}
std::string MirrorDeltaKey(const Capability& cap, uint64_t k) {
  return MirrorBaseKey(cap) + "#d" + std::to_string(k);
}

class CheckpointDeltaFixture : public ::testing::Test {
 protected:
  explicit CheckpointDeltaFixture(SystemConfig config = {}) : system_(config) {
    system_.RegisterType(MakeCounterType());
    system_.AddNodes(4);
  }

  InvokeResult Call(NodeKernel& from, const Capability& cap,
                    const std::string& op, InvokeArgs args = {}) {
    return system_.Await(from.Invoke(cap, op, std::move(args)));
  }

  EdenSystem system_;
};

TEST_F(CheckpointDeltaFixture, SecondCheckpointWritesADeltaLink) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  EXPECT_TRUE(system_.node(0).store().Contains(BaseKey(*cap)));
  EXPECT_FALSE(system_.node(0).store().Contains(DeltaKey(*cap, 1)));

  Call(system_.node(0), *cap, "increment");
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  EXPECT_TRUE(system_.node(0).store().Contains(DeltaKey(*cap, 1)));
}

TEST_F(CheckpointDeltaFixture, DeltaRestoreMatchesFullRestoreAtEveryStep) {
  // Two installations run the identical mutation/checkpoint/crash/reincarnate
  // schedule; A uses delta chains, B full records. After every reincarnation
  // the counter values and representation digests must agree.
  SystemConfig full_config;
  full_config.kernel.checkpoint_deltas = false;
  EdenSystem full(full_config);
  full.RegisterType(MakeCounterType());
  full.AddNodes(4);

  auto cap_a = system_.node(0).CreateObject("counter", CounterRep());
  auto cap_b = full.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap_a.ok() && cap_b.ok());

  auto step = [&](EdenSystem& sys, const Capability& cap,
                  uint64_t round) -> uint64_t {
    // Mutate a rotating extra segment directly (multi-segment dirty
    // tracking) plus the counter segment through the type code.
    auto object = sys.node(0).FindActive(cap.name());
    EXPECT_NE(object, nullptr);
    object->core->rep.set_data(1 + (round % 3),
                               Bytes(100 + round, static_cast<uint8_t>(round)));
    InvokeResult inc = sys.Await(
        sys.node(0).Invoke(cap, "increment", InvokeArgs{}.AddU64(round)));
    EXPECT_TRUE(inc.ok()) << inc.status;
    EXPECT_TRUE(sys.Await(sys.node(0).Invoke(cap, "checkpoint", {})).ok());
    EXPECT_TRUE(sys.Await(sys.node(0).Invoke(cap, "crash", {})).ok());
    // Reincarnate (base + replayed deltas for A, full record for B).
    InvokeResult read = sys.Await(sys.node(1).Invoke(cap, "read", {}));
    EXPECT_TRUE(read.ok()) << read.status;
    return read.results.U64At(0).value_or(~0ull);
  };

  uint64_t expected = 0;
  for (uint64_t round = 1; round <= 6; round++) {
    expected += round;
    uint64_t value_a = step(system_, *cap_a, round);
    uint64_t value_b = step(full, *cap_b, round);
    EXPECT_EQ(value_a, expected) << "round " << round;
    EXPECT_EQ(value_b, expected) << "round " << round;

    auto object_a = system_.node(0).FindActive(cap_a->name());
    auto object_b = full.node(0).FindActive(cap_b->name());
    ASSERT_NE(object_a, nullptr);
    ASSERT_NE(object_b, nullptr);
    EXPECT_EQ(object_a->core->rep.DigestValue(),
              object_b->core->rep.DigestValue())
        << "representations diverged at round " << round;
  }
  // The delta installation actually used delta links along the way.
  EXPECT_TRUE(system_.node(0).store().Contains(DeltaKey(*cap_a, 1)));
  EXPECT_FALSE(full.node(0).store().Contains(DeltaKey(*cap_b, 1)));
}

TEST_F(CheckpointDeltaFixture, DeltaCheckpointsWriteFarFewerBytes) {
  // Large cold segment + small hot segment: a delta checkpoint should write
  // a small fraction of what the base wrote.
  Representation rep = CounterRep();
  rep.set_data(1, Bytes(64 * 1024, 0xab));
  auto cap = system_.node(0).CreateObject("counter", rep);
  ASSERT_TRUE(cap.ok());

  Call(system_.node(0), *cap, "increment");
  uint64_t before = system_.node(0).store().stats().written_bytes;
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  uint64_t base_bytes = system_.node(0).store().stats().written_bytes - before;

  Call(system_.node(0), *cap, "increment");
  before = system_.node(0).store().stats().written_bytes;
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  uint64_t delta_bytes = system_.node(0).store().stats().written_bytes - before;

  EXPECT_GT(base_bytes, 64u * 1024u);
  EXPECT_LT(delta_bytes * 8, base_bytes)
      << "delta=" << delta_bytes << " base=" << base_bytes;
}

class CheckpointDeltaLimitFixture : public CheckpointDeltaFixture {
 protected:
  static SystemConfig LimitConfig() {
    SystemConfig config;
    config.kernel.checkpoint_delta_limit = 3;
    return config;
  }
  CheckpointDeltaLimitFixture() : CheckpointDeltaFixture(LimitConfig()) {}
};

TEST_F(CheckpointDeltaLimitFixture, ChainCompactsAtDeltaLimit) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  const StableStore& store = system_.node(0).store();

  // Checkpoint 1: base. 2..4: deltas #d1..#d3.
  for (int k = 0; k < 4; k++) {
    Call(system_.node(0), *cap, "increment");
    ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  }
  EXPECT_TRUE(store.Contains(DeltaKey(*cap, 1)));
  EXPECT_TRUE(store.Contains(DeltaKey(*cap, 3)));

  // Checkpoint 5 hits the limit: new base, chain erased.
  Call(system_.node(0), *cap, "increment");
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  EXPECT_TRUE(store.Contains(BaseKey(*cap)));
  EXPECT_FALSE(store.Contains(DeltaKey(*cap, 1)));
  EXPECT_FALSE(store.Contains(DeltaKey(*cap, 3)));

  // The compacted state restores correctly.
  ASSERT_TRUE(Call(system_.node(0), *cap, "crash").ok());
  InvokeResult read = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(read.ok()) << read.status;
  EXPECT_EQ(read.results.U64At(0).value(), 5u);
}

TEST_F(CheckpointDeltaFixture, MirroredChainPromotesAndRestores) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  auto object = system_.node(0).FindActive(cap->name());
  object->policy = CheckpointPolicy{system_.node(0).station(),
                                    ReliabilityLevel::kMirrored,
                                    system_.node(3).station()};
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(10));
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(5));
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());

  // Primary chain on node 0, mirror chain on node 3.
  EXPECT_TRUE(system_.node(0).store().Contains(BaseKey(*cap)));
  EXPECT_TRUE(system_.node(0).store().Contains(DeltaKey(*cap, 1)));
  EXPECT_TRUE(system_.node(3).store().Contains(MirrorBaseKey(*cap)));
  EXPECT_TRUE(system_.node(3).store().Contains(MirrorDeltaKey(*cap, 1)));

  // Primary site permanently lost: promote the mirror, chain and all.
  system_.node(0).FailNode();
  ASSERT_TRUE(system_.Await(system_.node(3).PromoteMirror(cap->name())).ok());
  EXPECT_TRUE(system_.node(3).store().Contains(BaseKey(*cap)));
  EXPECT_TRUE(system_.node(3).store().Contains(DeltaKey(*cap, 1)));
  InvokeResult read = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(read.ok()) << read.status;
  EXPECT_EQ(read.results.U64At(0).value(), 15u);
}

TEST_F(CheckpointDeltaFixture, MoveForcesAFreshBaseAtTheChecksite) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment");
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  Call(system_.node(0), *cap, "increment");
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  ASSERT_TRUE(system_.node(0).store().Contains(DeltaKey(*cap, 1)));

  // Migrate; the checksite stays node 0 but the new host has no base yet,
  // so its first checkpoint must be a full record that clears the old chain.
  auto object = system_.node(0).FindActive(cap->name());
  ASSERT_TRUE(system_
                  .Await(system_.node(0).MoveObject(object,
                                                    system_.node(1).station()))
                  .ok());
  system_.RunFor(Milliseconds(10));
  ASSERT_TRUE(system_.node(1).IsActive(cap->name()));
  Call(system_.node(2), *cap, "increment");
  ASSERT_TRUE(Call(system_.node(2), *cap, "checkpoint").ok());
  EXPECT_TRUE(system_.node(0).store().Contains(BaseKey(*cap)));
  EXPECT_FALSE(system_.node(0).store().Contains(DeltaKey(*cap, 1)));

  ASSERT_TRUE(Call(system_.node(2), *cap, "crash").ok());
  InvokeResult read = Call(system_.node(2), *cap, "read");
  ASSERT_TRUE(read.ok()) << read.status;
  EXPECT_EQ(read.results.U64At(0).value(), 3u);
}

TEST_F(CheckpointDeltaFixture, RemoteChecksiteAccumulatesTheChain) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  auto object = system_.node(0).FindActive(cap->name());
  object->policy = CheckpointPolicy{system_.node(2).station(),
                                    ReliabilityLevel::kLocal, 0};
  for (int k = 0; k < 3; k++) {
    Call(system_.node(0), *cap, "increment");
    ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  }
  EXPECT_TRUE(system_.node(2).store().Contains(BaseKey(*cap)));
  EXPECT_TRUE(system_.node(2).store().Contains(DeltaKey(*cap, 1)));
  EXPECT_TRUE(system_.node(2).store().Contains(DeltaKey(*cap, 2)));
  EXPECT_FALSE(system_.node(0).store().Contains(BaseKey(*cap)));

  // Execution site dies; the chain replays at the checksite.
  system_.node(0).FailNode();
  InvokeResult read = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(read.ok()) << read.status;
  EXPECT_EQ(read.results.U64At(0).value(), 3u);
  EXPECT_TRUE(system_.node(2).IsActive(cap->name()));
}

TEST_F(CheckpointDeltaFixture, CorruptDeltaLinkFallsBackToIntactPrefix) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  Call(system_.node(0), *cap, "increment");
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "crash").ok());

  // Garbage over delta link 1: reincarnation restores the longest intact
  // prefix — the base record's state — instead of declaring data loss
  // (DESIGN.md §11).
  system_.Await(
      system_.node(0).store().Put(DeltaKey(*cap, 1), Bytes{0xde, 0xad}));
  InvokeResult result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 0u);
  // The unusable tail was dropped, so the on-disk chain matches the
  // restored state, and the fallback was counted.
  EXPECT_FALSE(system_.node(0).store().Contains(DeltaKey(*cap, 1)));
  EXPECT_EQ(
      system_.node(0).metrics().counter("kernel.restore.fallbacks").value(),
      1u);
}

TEST_F(CheckpointDeltaFixture, CorruptDeltaLinkWithFallbackDisabledIsDataLoss) {
  SystemConfig config;
  config.kernel.restore_fallback = false;
  EdenSystem strict(config);
  strict.RegisterType(MakeCounterType());
  strict.AddNodes(2);

  auto cap = strict.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(strict.Await(strict.node(0).Invoke(*cap, "checkpoint", {})).ok());
  strict.Await(strict.node(0).Invoke(*cap, "increment", {}));
  ASSERT_TRUE(strict.Await(strict.node(0).Invoke(*cap, "checkpoint", {})).ok());
  ASSERT_TRUE(strict.Await(strict.node(0).Invoke(*cap, "crash", {})).ok());

  strict.Await(
      strict.node(0).store().Put(DeltaKey(*cap, 1), Bytes{0xde, 0xad}));
  InvokeResult result = strict.Await(strict.node(1).Invoke(*cap, "read", {}));
  EXPECT_EQ(result.status.code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointDeltaFixture, CorruptBaseWithoutMirrorIsDataLoss) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  Call(system_.node(0), *cap, "increment");
  ASSERT_TRUE(Call(system_.node(0), *cap, "checkpoint").ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "crash").ok());

  // The base itself is unreadable and there is no mirror: nothing to fall
  // back to.
  system_.Await(system_.node(0).store().Put(BaseKey(*cap), Bytes{0xde, 0xad}));
  InvokeResult result = Call(system_.node(1), *cap, "read");
  EXPECT_EQ(result.status.code(), StatusCode::kDataLoss);
  // The unusable chain was quarantined so later locates stop landing here.
  EXPECT_FALSE(system_.node(0).store().Contains(BaseKey(*cap)));
  EXPECT_FALSE(system_.node(0).store().Contains(DeltaKey(*cap, 1)));
  EXPECT_EQ(
      system_.node(0).metrics().counter("kernel.restore.quarantines").value(),
      1u);
}

}  // namespace
}  // namespace eden
