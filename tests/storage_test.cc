// Unit tests for the simulated stable store (the per-node disk).
#include <gtest/gtest.h>

#include "src/sim/task.h"
#include "src/storage/stable_store.h"

namespace eden {
namespace {

template <typename T>
T Await(Simulation& sim, Future<T> future) {
  sim.RunWhile([&] { return !future.ready(); });
  EXPECT_TRUE(future.ready());
  return future.Get();
}

TEST(StableStoreTest, PutThenGetReturnsValue) {
  Simulation sim;
  StableStore store(sim);
  ASSERT_TRUE(Await(sim, store.Put("key", ToBytes("value"))).ok());
  auto read = Await(sim, store.Get("key"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(*read), "value");
}

TEST(StableStoreTest, GetMissingIsNotFound) {
  Simulation sim;
  StableStore store(sim);
  auto read = Await(sim, store.Get("missing"));
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(StableStoreTest, OverwriteReplacesAndAccountsBytes) {
  Simulation sim;
  StableStore store(sim);
  ASSERT_TRUE(Await(sim, store.Put("k", Bytes(1000))).ok());
  EXPECT_EQ(store.bytes_used(), 1000u);
  ASSERT_TRUE(Await(sim, store.Put("k", Bytes(10))).ok());
  EXPECT_EQ(store.bytes_used(), 10u);
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(StableStoreTest, DeleteRemovesRecord) {
  Simulation sim;
  StableStore store(sim);
  ASSERT_TRUE(Await(sim, store.Put("k", ToBytes("x"))).ok());
  EXPECT_TRUE(store.Contains("k"));
  ASSERT_TRUE(Await(sim, store.Delete("k")).ok());
  EXPECT_FALSE(store.Contains("k"));
  EXPECT_EQ(store.bytes_used(), 0u);
  // Deleting again is OK (idempotent).
  EXPECT_TRUE(Await(sim, store.Delete("k")).ok());
}

TEST(StableStoreTest, ServiceTimeIncludesSeekAndTransfer) {
  Simulation sim;
  DiskConfig config;
  config.average_seek = Milliseconds(30);
  config.rotational_latency = Milliseconds(8);
  config.transfer_bytes_per_sec = 1e6;
  StableStore store(sim, config);

  SimTime start = sim.now();
  ASSERT_TRUE(Await(sim, store.Put("k", Bytes(100000))).ok());
  SimDuration elapsed = sim.now() - start;
  // 38 ms access + 100 ms transfer.
  EXPECT_NEAR(static_cast<double>(elapsed), 138e6, 2e6);
}

TEST(StableStoreTest, RequestsQueueThroughOneArm) {
  Simulation sim;
  StableStore store(sim);
  Future<Status> first = store.Put("a", Bytes(10));
  Future<Status> second = store.Put("b", Bytes(10));
  SimTime start = sim.now();
  Await(sim, second);
  // Two sequential accesses, not one: the arm serializes.
  EXPECT_GE(sim.now() - start, 2 * Milliseconds(38));
  EXPECT_TRUE(first.ready());
}

TEST(StableStoreTest, CapacityIsEnforced) {
  Simulation sim;
  DiskConfig config;
  config.capacity_bytes = 1000;
  StableStore store(sim, config);
  EXPECT_TRUE(Await(sim, store.Put("fits", Bytes(900))).ok());
  Status status = Await(sim, store.Put("overflow", Bytes(200)));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Replacing the existing record within capacity is fine.
  EXPECT_TRUE(Await(sim, store.Put("fits", Bytes(990))).ok());
}

TEST(StableStoreTest, KeysListsEverything) {
  Simulation sim;
  StableStore store(sim);
  Await(sim, store.Put("b", Bytes(1)));
  Await(sim, store.Put("a", Bytes(1)));
  auto keys = store.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(StableStoreTest, StatsAccumulate) {
  Simulation sim;
  StableStore store(sim);
  Await(sim, store.Put("k", Bytes(500)));
  Await(sim, store.Get("k"));
  Await(sim, store.Delete("k"));
  EXPECT_EQ(store.stats().writes, 1u);
  EXPECT_EQ(store.stats().reads, 1u);
  EXPECT_EQ(store.stats().deletes, 1u);
  EXPECT_EQ(store.stats().written_bytes, 500u);
  EXPECT_EQ(store.stats().read_bytes, 500u);
  EXPECT_GT(store.stats().busy_time, 0);
}

}  // namespace
}  // namespace eden
