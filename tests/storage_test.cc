// Unit tests for the simulated stable store (the per-node disk): basic
// record semantics, the C-LOOK elevator scheduler, group commit, read
// fairness, and capacity accounting.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/sim/task.h"
#include "src/storage/stable_store.h"

namespace eden {
namespace {

template <typename T>
T Await(Simulation& sim, Future<T> future) {
  sim.RunWhile([&] { return !future.ready(); });
  EXPECT_TRUE(future.ready());
  return future.Get();
}

// Probes generated keys until one lands on a track satisfying `pred`
// (TrackOf is a pure hash, so this is deterministic).
std::string KeyWithTrack(const StableStore& store,
                         const std::function<bool(uint32_t)>& pred, int salt) {
  for (int i = 0;; i++) {
    std::string key = "k" + std::to_string(salt) + "_" + std::to_string(i);
    if (pred(store.TrackOf(key))) {
      return key;
    }
  }
}

TEST(StableStoreTest, PutThenGetReturnsValue) {
  Simulation sim;
  StableStore store(sim);
  ASSERT_TRUE(Await(sim, store.Put("key", ToBytes("value"))).ok());
  auto read = Await(sim, store.Get("key"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(read->view()), "value");
}

TEST(StableStoreTest, GetMissingIsNotFound) {
  Simulation sim;
  StableStore store(sim);
  auto read = Await(sim, store.Get("missing"));
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(StableStoreTest, GetSnapshotsValueAtCallTime) {
  // An overwrite issued while a read is queued must not alter what the read
  // returns (the read snapshots the record refcounted at enqueue).
  Simulation sim;
  StableStore store(sim);
  ASSERT_TRUE(Await(sim, store.Put("k", ToBytes("old"))).ok());
  Future<StatusOr<SharedBytes>> read = store.Get("k");
  store.Put("k", ToBytes("new"));
  auto value = Await(sim, read);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(ToString(value->view()), "old");
}

TEST(StableStoreTest, OverwriteReplacesAndAccountsBytes) {
  Simulation sim;
  StableStore store(sim);
  ASSERT_TRUE(Await(sim, store.Put("k", Bytes(1000))).ok());
  EXPECT_EQ(store.bytes_used(), 1000u);
  ASSERT_TRUE(Await(sim, store.Put("k", Bytes(10))).ok());
  EXPECT_EQ(store.bytes_used(), 10u);
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(StableStoreTest, DeleteRemovesRecord) {
  Simulation sim;
  StableStore store(sim);
  ASSERT_TRUE(Await(sim, store.Put("k", ToBytes("x"))).ok());
  EXPECT_TRUE(store.Contains("k"));
  ASSERT_TRUE(Await(sim, store.Delete("k")).ok());
  EXPECT_FALSE(store.Contains("k"));
  EXPECT_EQ(store.bytes_used(), 0u);
  // Deleting again is OK (idempotent).
  EXPECT_TRUE(Await(sim, store.Delete("k")).ok());
}

TEST(StableStoreTest, ServiceTimeIncludesSeekAndTransfer) {
  Simulation sim;
  DiskConfig config;
  config.average_seek = Milliseconds(30);
  config.rotational_latency = Milliseconds(8);
  config.transfer_bytes_per_sec = 1e6;
  StableStore store(sim, config);

  SimTime start = sim.now();
  ASSERT_TRUE(Await(sim, store.Put("k", Bytes(100000))).ok());
  SimDuration elapsed = sim.now() - start;
  // 38 ms access (cold arm pays the average seek) + 100 ms transfer.
  EXPECT_NEAR(static_cast<double>(elapsed), 138e6, 2e6);
}

TEST(StableStoreTest, ReadsSerializeThroughOneArm) {
  // Reads are never batched: two concurrent reads are two arm services.
  Simulation sim;
  StableStore store(sim);
  ASSERT_TRUE(Await(sim, store.Put("k", Bytes(10000))).ok());

  Future<StatusOr<SharedBytes>> first = store.Get("k");
  Future<StatusOr<SharedBytes>> second = store.Get("k");
  SimTime first_done = 0;
  first.OnReady([&] { first_done = sim.now(); });
  Await(sim, second);
  EXPECT_TRUE(first.ready());
  EXPECT_GT(sim.now(), first_done);
}

TEST(StableStoreTest, GroupCommitCoalescesQueuedWrites) {
  Simulation sim;
  StableStore store(sim);
  SimTime start = sim.now();
  // The first write spins the arm up alone; the other three arrive while it
  // is busy and must share a single durable flush.
  Future<Status> w1 = store.Put("w1", Bytes(1000));
  Future<Status> w2 = store.Put("w2", Bytes(1000));
  Future<Status> w3 = store.Put("w3", Bytes(1000));
  Future<Status> w4 = store.Put("w4", Bytes(1000));
  Await(sim, w4);
  EXPECT_TRUE(w1.ready() && w2.ready() && w3.ready());
  EXPECT_EQ(store.stats().batch_flushes, 2u);
  EXPECT_EQ(store.stats().batched_writes, 3u);
  // Far cheaper than four cold accesses in the FIFO model.
  EXPECT_LT(sim.now() - start, 4 * Milliseconds(38));
}

TEST(StableStoreTest, CommitIntervalHoldsIdleWritesForBatching) {
  Simulation sim;
  DiskConfig config;
  config.commit_interval = Milliseconds(5);
  StableStore store(sim, config);

  Future<Status> w1 = store.Put("w1", Bytes(100));
  // Arrives during the hold-off window: joins w1's flush.
  Future<Status> w2 = store.Put("w2", Bytes(100));
  SimTime w1_done = 0;
  w1.OnReady([&] { w1_done = sim.now(); });
  Await(sim, w2);
  EXPECT_EQ(sim.now(), w1_done);  // one flush, one completion instant
  EXPECT_EQ(store.stats().batch_flushes, 1u);
  EXPECT_EQ(store.stats().batched_writes, 2u);
  EXPECT_GE(sim.now(), Milliseconds(5));  // the hold-off actually happened
}

TEST(StableStoreTest, ElevatorServicesReadsInTrackOrder) {
  Simulation sim;
  DiskConfig config;
  StableStore store(sim, config);

  // Park the arm at a known low track, then queue reads whose tracks are
  // ahead of it at increasing distances, enqueued out of order.
  std::string anchor =
      KeyWithTrack(store, [](uint32_t t) { return t < 100; }, 0);
  uint32_t arm = store.TrackOf(anchor);
  auto ahead = [&](uint32_t lo, uint32_t hi, int salt) {
    return KeyWithTrack(
        store, [&, lo, hi](uint32_t t) { return t > arm + lo && t <= arm + hi; },
        salt);
  };
  std::string key_lo = ahead(10, 100, 1);
  std::string key_mid = ahead(150, 250, 2);
  std::string key_hi = ahead(300, 400, 3);
  for (const std::string& key : {anchor, key_lo, key_mid, key_hi}) {
    ASSERT_TRUE(Await(sim, store.Put(key, Bytes(10))).ok());
  }
  // Reposition the arm at the anchor's track.
  ASSERT_TRUE(Await(sim, store.Get(anchor)).ok());

  std::vector<std::string> order;
  auto track_completion = [&](const std::string& label,
                              Future<StatusOr<SharedBytes>> f) {
    f.OnReady([&order, label] { order.push_back(label); });
  };
  // Busy the arm (travel 0), then enqueue hi, lo, mid.
  Future<StatusOr<SharedBytes>> busy = store.Get(anchor);
  track_completion("hi", store.Get(key_hi));
  Future<StatusOr<SharedBytes>> lo_read = store.Get(key_lo);
  track_completion("lo", lo_read);
  track_completion("mid", store.Get(key_mid));
  sim.Run();
  ASSERT_EQ(order.size(), 3u);
  // C-LOOK sweeps ascending from the arm, not in arrival order.
  EXPECT_EQ(order[0], "lo");
  EXPECT_EQ(order[1], "mid");
  EXPECT_EQ(order[2], "hi");
}

TEST(StableStoreTest, FifoModeServicesInArrivalOrder) {
  Simulation sim;
  DiskConfig config;
  config.elevator = false;
  StableStore store(sim, config);

  std::string anchor =
      KeyWithTrack(store, [](uint32_t t) { return t < 100; }, 0);
  uint32_t arm = store.TrackOf(anchor);
  auto ahead = [&](uint32_t lo, uint32_t hi, int salt) {
    return KeyWithTrack(
        store, [&, lo, hi](uint32_t t) { return t > arm + lo && t <= arm + hi; },
        salt);
  };
  std::string key_lo = ahead(10, 100, 1);
  std::string key_hi = ahead(300, 400, 3);
  for (const std::string& key : {anchor, key_lo, key_hi}) {
    ASSERT_TRUE(Await(sim, store.Put(key, Bytes(10))).ok());
  }
  ASSERT_TRUE(Await(sim, store.Get(anchor)).ok());

  std::vector<std::string> order;
  Future<StatusOr<SharedBytes>> busy = store.Get(anchor);
  Future<StatusOr<SharedBytes>> hi_read = store.Get(key_hi);
  hi_read.OnReady([&] { order.push_back("hi"); });
  Future<StatusOr<SharedBytes>> lo_read = store.Get(key_lo);
  lo_read.OnReady([&] { order.push_back("lo"); });
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "hi");  // arrival order, ignoring tracks
  EXPECT_EQ(order[1], "lo");
}

TEST(StableStoreTest, BatchRespectsMaxBatchBytes) {
  Simulation sim;
  DiskConfig config;
  config.max_batch_bytes = 250 * 1000;
  StableStore store(sim, config);

  std::vector<Future<Status>> writes;
  for (int i = 0; i < 5; i++) {
    writes.push_back(store.Put("w" + std::to_string(i), Bytes(100 * 1000)));
  }
  for (auto& w : writes) {
    EXPECT_TRUE(Await(sim, w).ok());
  }
  // {w0} dispatches alone; the four queued 100 KB writes split into two
  // flushes of two (a third member would exceed max_batch_bytes).
  EXPECT_EQ(store.stats().batch_flushes, 3u);
  EXPECT_EQ(store.stats().batched_writes, 4u);
}

TEST(StableStoreTest, MaxBatchOpsOneDisablesBatching) {
  Simulation sim;
  DiskConfig config;
  config.max_batch_ops = 1;
  StableStore store(sim, config);
  Future<Status> w1 = store.Put("a", Bytes(10));
  Future<Status> w2 = store.Put("b", Bytes(10));
  Await(sim, w2);
  EXPECT_EQ(store.stats().batch_flushes, 2u);
  EXPECT_EQ(store.stats().batched_writes, 0u);
}

TEST(StableStoreTest, PendingReadPreemptsWritesAfterFairnessCap) {
  Simulation sim;
  DiskConfig config;
  config.elevator = false;  // FIFO keeps the schedule obvious
  config.max_batch_ops = 1;
  config.max_writes_per_pass = 2;
  StableStore store(sim, config);
  ASSERT_TRUE(Await(sim, store.Put("r", Bytes(10))).ok());
  // Reset the per-pass write counter (it only resets when a read services).
  ASSERT_TRUE(Await(sim, store.Get("r")).ok());

  std::vector<std::string> order;
  Future<Status> w1 = store.Put("w1", Bytes(1000));  // dispatches immediately
  for (int i = 2; i <= 5; i++) {
    std::string label = "w" + std::to_string(i);
    Future<Status> w = store.Put(label, Bytes(1000));
    w.OnReady([&order, label] { order.push_back(label); });
  }
  Future<StatusOr<SharedBytes>> read = store.Get("r");
  read.OnReady([&order] { order.push_back("read"); });
  sim.Run();
  ASSERT_EQ(order.size(), 5u);
  // w1 (in flight) + w2 exhaust the two-writes-per-pass budget, then the
  // read cuts ahead of w3..w5.
  EXPECT_EQ(order[0], "w2");
  EXPECT_EQ(order[1], "read");
  EXPECT_EQ(order[2], "w3");
}

TEST(StableStoreTest, CapacityIsEnforced) {
  Simulation sim;
  DiskConfig config;
  config.capacity_bytes = 1000;
  StableStore store(sim, config);
  EXPECT_TRUE(Await(sim, store.Put("fits", Bytes(900))).ok());
  Status status = Await(sim, store.Put("overflow", Bytes(200)));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // A failed put leaves no trace in the index or the accounting.
  EXPECT_FALSE(store.Contains("overflow"));
  EXPECT_EQ(store.bytes_used(), 900u);
  // Replacing the existing record within capacity is fine.
  EXPECT_TRUE(Await(sim, store.Put("fits", Bytes(990))).ok());
}

TEST(StableStoreTest, DeleteAndOverwriteReclaimCapacity) {
  // Regression: the overwrite and delete paths must reclaim capacity
  // immediately, and a rejected oversized overwrite must leave the original
  // record intact.
  Simulation sim;
  DiskConfig config;
  config.capacity_bytes = 1000;
  StableStore store(sim, config);
  ASSERT_TRUE(Await(sim, store.Put("a", Bytes(600))).ok());
  EXPECT_EQ(Await(sim, store.Put("b", Bytes(600))).code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(Await(sim, store.Delete("a")).ok());
  EXPECT_TRUE(Await(sim, store.Put("b", Bytes(600))).ok());
  // Shrinking an existing record frees the difference...
  ASSERT_TRUE(Await(sim, store.Put("b", Bytes(100))).ok());
  EXPECT_TRUE(Await(sim, store.Put("c", Bytes(800))).ok());
  EXPECT_EQ(store.bytes_used(), 900u);
  // ...and growing one past capacity is rejected without corrupting it.
  EXPECT_EQ(Await(sim, store.Put("c", Bytes(950))).code(),
            StatusCode::kResourceExhausted);
  auto read = Await(sim, store.Get("c"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 800u);
}

TEST(StableStoreTest, DeltaSuffixedKeysShareTheBaseTrack) {
  Simulation sim;
  StableStore store(sim);
  EXPECT_EQ(store.TrackOf("ckpt/obj"), store.TrackOf("ckpt/obj#d1"));
  EXPECT_EQ(store.TrackOf("ckpt/obj"), store.TrackOf("ckpt/obj#d12"));
}

TEST(StableStoreTest, KeysListsEverythingSorted) {
  Simulation sim;
  StableStore store(sim);
  Await(sim, store.Put("b", Bytes(1)));
  Await(sim, store.Put("a", Bytes(1)));
  Await(sim, store.Put("c", Bytes(1)));
  auto keys = store.Keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_EQ(keys[2], "c");
}

TEST(StableStoreTest, StatsAccumulate) {
  Simulation sim;
  StableStore store(sim);
  Await(sim, store.Put("k", Bytes(500)));
  Await(sim, store.Get("k"));
  Await(sim, store.Delete("k"));
  EXPECT_EQ(store.stats().writes, 1u);
  EXPECT_EQ(store.stats().reads, 1u);
  EXPECT_EQ(store.stats().deletes, 1u);
  EXPECT_EQ(store.stats().written_bytes, 500u);
  EXPECT_EQ(store.stats().read_bytes, 500u);
  EXPECT_GT(store.stats().busy_time, 0);
}

}  // namespace
}  // namespace eden
