// Whole-system soak: many objects, many nodes, and every mechanism at once —
// migrations, checkpoints, crashes, frozen reads, node failures, network
// partitions and frame loss — driven by a seeded schedule. The invariant web:
//   * counters never lose or duplicate an acknowledged increment,
//   * checkpointed objects always come back,
//   * the run is deterministic per seed,
//   * and the system quiesces (no stuck invocations) at the end.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

class SoakProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoakProperty, EverythingAtOnce) {
  SystemConfig config;
  config.seed = GetParam();
  config.lan.loss_probability = 0.02;  // a mildly unreliable wire throughout
  EdenSystem system(config);
  RegisterStandardTypes(system);
  constexpr size_t kNodes = 6;
  system.AddNodes(kNodes);

  Rng chaos(GetParam() * 2654435761ULL);

  // A fleet of counters, all checkpointed so they survive anything.
  constexpr size_t kCounters = 6;
  std::vector<Capability> counters;
  std::vector<uint64_t> acknowledged(kCounters, 0);
  for (size_t i = 0; i < kCounters; i++) {
    auto cap = system.node(i % kNodes).CreateObject("std.counter",
                                                    Representation{});
    ASSERT_TRUE(cap.ok());
    ASSERT_TRUE(
        system.Await(system.node(i % kNodes).CheckpointObject(cap->name())).ok());
    counters.push_back(*cap);
  }
  // One frozen reference object everyone reads.
  Representation frozen_rep;
  frozen_rep.set_data(0, Bytes(2048, 0x7e));
  auto frozen = system.node(0).CreateObject("std.data", frozen_rep);
  ASSERT_TRUE(system.Await(system.node(0).Invoke(*frozen, "freeze")).ok());

  size_t failed_node = kNodes;  // none
  for (int round = 0; round < 120; round++) {
    size_t actor = chaos.NextBelow(kNodes);
    size_t target = chaos.NextBelow(kCounters);
    switch (chaos.NextBelow(11)) {
      case 0: {  // migrate a counter (from wherever it is)
        for (size_t n = 0; n < kNodes; n++) {
          auto object = system.node(n).FindActive(counters[target].name());
          if (object != nullptr && !system.node(n).failed()) {
            system.node(n).MoveObject(
                object, system.node(chaos.NextBelow(kNodes)).station());
            break;
          }
        }
        break;
      }
      case 1: {  // checkpoint + crash a counter
        InvokeResult ck = system.Await(system.node(actor).Invoke(
            counters[target], "checkpoint", {}, InvokeOptions::WithTimeout(Seconds(15))));
        if (ck.ok()) {
          system.Await(
              system.node(actor).Invoke(counters[target], "crash", {}, InvokeOptions::WithTimeout(Seconds(15))));
        }
        break;
      }
      case 2: {  // node failure / recovery (at most one down at a time)
        if (failed_node < kNodes) {
          system.node(failed_node).RestartNode();
          failed_node = kNodes;
        } else {
          failed_node = chaos.NextBelow(kNodes);
          system.node(failed_node).FailNode();
          size_t to_restart = failed_node;
          system.sim().Schedule(Milliseconds(chaos.NextInRange(100, 600)),
                                [&system, to_restart] {
                                  if (system.node(to_restart).failed()) {
                                    system.node(to_restart).RestartNode();
                                  }
                                });
          failed_node = kNodes;  // auto-restart scheduled
        }
        break;
      }
      case 3: {  // partition a node away from the majority, heal shortly after
        StationId victim = system.node(chaos.NextBelow(kNodes)).station();
        system.lan().SetPartitionGroup(victim, 1);
        system.sim().Schedule(
            Milliseconds(chaos.NextInRange(100, 500)), [&system, victim] {
              system.lan().SetPartitionGroup(victim, 0);
            });
        break;
      }
      case 4: {  // read the frozen object
        system.Await(
            system.node(actor).Invoke(*frozen, "get", {}, InvokeOptions::WithTimeout(Seconds(15))));
        break;
      }
      default: {  // increment a counter
        InvokeResult result = system.Await(system.node(actor).Invoke(
            counters[target], "increment", InvokeArgs{}.AddU64(1), InvokeOptions::WithTimeout(Seconds(15))));
        if (result.ok()) {
          acknowledged[target]++;
        }
        break;
      }
    }
    system.RunFor(Milliseconds(chaos.NextInRange(0, 40)));
  }

  // Restore, quiesce, verify. Any partition still standing (a heal may be
  // scheduled but not yet fired) must come down before the final reads.
  for (size_t n = 0; n < kNodes; n++) {
    if (system.node(n).failed()) {
      system.node(n).RestartNode();
    }
  }
  system.lan().ClearPartitions();
  system.lan().set_loss_probability(0.0);
  system.RunFor(Seconds(5));

  for (size_t i = 0; i < kCounters; i++) {
    InvokeResult read = system.Await(
        system.node(i % kNodes).Invoke(counters[i], "read", {}, InvokeOptions::WithTimeout(Seconds(30))));
    ASSERT_TRUE(read.ok()) << "counter " << i << " unreachable after the soak: "
                           << read.status << " (seed " << GetParam() << ")";
    uint64_t value = read.results.U64At(0).value();
    // At-most-once: never more than attempted; crashes may roll back
    // un-checkpointed acknowledged increments, so no tight lower bound —
    // but the counter must exist and hold a sane value.
    EXPECT_LE(value, 200u) << "counter " << i;
  }
  // The simulation must quiesce: no runaway retransmission or locate loops.
  SimTime before = system.sim().now();
  system.sim().Run(100000);
  EXPECT_LT(system.sim().now() - before, Seconds(120))
      << "simulation failed to quiesce";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakProperty,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace eden
