// Determinism regression tests for the scheduler and message-path fast
// paths: equal seeds must produce bit-identical executions, fingerprinted by
// Simulation::trace() — a digest of every executed event's (when, seq) pair.
// Any reordering introduced by the slot-pool event queue, the zero-copy
// fragment path, or ACK coalescing (e.g. iterating an unordered container to
// produce wire traffic) shows up here as a digest mismatch.
//
// The two workloads mirror the shapes of bench_invocation and
// bench_migration: a multi-node invocation mix over a lossy wire (exercising
// fragmentation, retransmission and coalesced ACKs), and an object that
// migrates between nodes while being invoked (exercising transfer,
// redirection and cache healing).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/kernel/eden_system.h"
#include "src/sim/simulation.h"
#include "src/trace/span.h"
#include "src/types/standard_types.h"
#include "src/workload/workload.h"

namespace eden {
namespace {

// Execution-order digest plus end-state counters: the trace digest alone
// proves event ordering, the stats prove the runs also did the same work.
uint64_t Fingerprint(EdenSystem& system) {
  Digest digest = system.sim().trace();
  digest.Mix(static_cast<uint64_t>(system.sim().now()));
  digest.Mix(system.sim().events_executed());
  for (size_t n = 0; n < system.node_count(); n++) {
    const KernelStats& stats = system.node(n).stats();
    digest.Mix(stats.invocations_started);
    digest.Mix(stats.invocations_remote);
    digest.Mix(stats.dispatches);
  }
  digest.Mix(system.lan().stats().frames_sent);
  digest.Mix(system.lan().stats().bytes_on_wire);
  return digest.value();
}

// bench_invocation-shaped: closed-loop clients on four nodes invoking one
// remote std.data object with mixed argument sizes (the 4 KB puts fragment
// across several frames), over a lossy wire so retransmission, duplicate
// suppression and delayed/piggybacked ACK paths all run.
uint64_t RunInvocationWorkload(uint64_t seed, bool traced = false) {
  SystemConfig config;
  config.seed = seed;
  config.lan.loss_probability = 0.05;
  SpanCollector spans;
  EdenSystem system(config);
  if (traced) {
    system.set_span_collector(&spans);
  }
  RegisterStandardTypes(system);
  system.AddNodes(5);

  Representation rep;
  rep.set_data(0, Bytes(64, 0x5a));
  auto cap = system.node(0).CreateObject("std.data", rep);
  EXPECT_TRUE(cap.ok());

  RunClosedLoop(
      system, {1, 2, 3, 4},
      [&](size_t client, uint64_t seq) {
        size_t arg_bytes = (seq % 3 == 0) ? 4096 : (client % 2 == 0 ? 64 : 512);
        return WorkItem{*cap, "put",
                        InvokeArgs{}.AddBytes(Bytes(arg_bytes, 0x33))};
      },
      /*duration=*/Milliseconds(40), /*mean_think_time=*/Microseconds(200));
  return Fingerprint(system);
}

// bench_migration-shaped: an object hops around the ring while other nodes
// keep invoking it through stale location caches.
uint64_t RunMigrationWorkload(uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  EdenSystem system(config);
  RegisterStandardTypes(system);
  system.AddNodes(4);

  Representation rep;
  rep.set_data(0, Bytes(2048, 0x77));
  auto cap = system.node(0).CreateObject("std.data", rep);
  EXPECT_TRUE(cap.ok());

  size_t host = 0;
  for (int round = 0; round < 12; round++) {
    // Invoke from a non-host node (warms/stales its cache), then move.
    size_t invoker = (host + 2) % 4;
    EXPECT_TRUE(system.Await(system.node(invoker).Invoke(*cap, "size")).ok());
    auto object = system.node(host).FindActive(cap->name());
    EXPECT_TRUE(object != nullptr) << "round " << round;
    if (object == nullptr) {
      return 0;
    }
    size_t next = (host + 1) % 4;
    EXPECT_TRUE(
        system
            .Await(system.node(host).MoveObject(object,
                                                system.node(next).station()))
            .ok());
    host = next;
    // Chase the now-stale cache entry.
    EXPECT_TRUE(system.Await(system.node(invoker).Invoke(*cap, "get")).ok());
  }
  system.RunFor(Milliseconds(5));
  return Fingerprint(system);
}

// Storage-path shaped: several objects on one node checkpoint concurrently
// (delta chains + group commit on the shared disk arm), then the node fails
// and every object reincarnates from base + replayed deltas. Exercises the
// elevator scheduler, batched flushes and chain restore deterministically.
uint64_t RunCheckpointWorkload(uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  config.disk.commit_interval = Microseconds(500);
  EdenSystem system(config);
  RegisterStandardTypes(system);
  system.AddNodes(3);

  std::vector<Capability> caps;
  for (int i = 0; i < 6; i++) {
    Representation rep;
    rep.set_data(0, Bytes(1024 + 256 * i, static_cast<uint8_t>(i)));
    auto cap = system.node(0).CreateObject("std.data", rep);
    EXPECT_TRUE(cap.ok());
    caps.push_back(*cap);
  }
  for (int round = 0; round < 4; round++) {
    std::vector<Future<Status>> checkpoints;
    for (size_t i = 0; i < caps.size(); i++) {
      EXPECT_TRUE(system
                      .Await(system.node(1).Invoke(
                          caps[i], "put",
                          InvokeArgs{}.AddBytes(Bytes(
                              512, static_cast<uint8_t>(round * 16 + i)))))
                      .ok());
      checkpoints.push_back(system.node(0).CheckpointObject(caps[i].name()));
    }
    for (auto& f : checkpoints) {
      EXPECT_TRUE(system.Await(std::move(f)).ok());
    }
  }
  system.node(0).FailNode();
  system.node(0).RestartNode();
  for (const Capability& cap : caps) {
    EXPECT_TRUE(system.Await(system.node(2).Invoke(cap, "size")).ok());
  }
  system.RunFor(Milliseconds(5));
  return Fingerprint(system);
}

// Chaos-shaped: the standard fault storm (wire corruption/duplication/delay,
// flaky disks, crash-restart cycles, a partition/heal pair) over a live
// cross-node workload. Every fault decision draws from rngs forked off the
// simulation seed, so the digest must stay exactly as seed-stable as a clean
// run — this is the acceptance check that the chaos layer (DESIGN.md §11)
// never consults an unseeded source.
uint64_t RunChaosWorkload(uint64_t seed, bool traced = false) {
  SystemConfig config;
  config.seed = seed;
  config.lan.loss_probability = 0.02;
  SpanCollector spans;
  EdenSystem system(config);
  if (traced) {
    system.set_span_collector(&spans);
  }
  RegisterStandardTypes(system);
  system.AddNodes(5);
  system.EnableFaults(
      FaultPlan::StandardStorm(5, 2, Milliseconds(1), Seconds(2)));

  Representation rep;
  rep.set_data(0, Bytes(512, 0x42));
  auto cap = system.node(0).CreateObject("std.data", rep);
  EXPECT_TRUE(cap.ok());
  EXPECT_TRUE(system.Await(system.node(0).CheckpointObject(cap->name())).ok());

  for (int round = 0; round < 30; round++) {
    size_t invoker = 3 + (round % 2);  // the two non-flaky nodes drive
    system.Await(system.node(invoker).Invoke(
        *cap, "put", InvokeArgs{}.AddBytes(Bytes(256, uint8_t(round))),
        InvokeOptions::WithTimeout(Seconds(10))));
    system.RunFor(Milliseconds(60));
  }
  Digest digest;
  digest.Mix(Fingerprint(system));
  const FaultStats& faults = system.faults()->stats();
  digest.Mix(faults.wire_corrupted);
  digest.Mix(faults.wire_duplicated);
  digest.Mix(faults.wire_delayed);
  digest.Mix(faults.disk_write_errors);
  digest.Mix(faults.disk_torn_writes);
  digest.Mix(faults.disk_latent_corruptions);
  digest.Mix(faults.node_failures + faults.node_restarts);
  return digest.value();
}

class DeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismTest, InvocationWorkloadDigestIsSeedStable) {
  EXPECT_EQ(RunInvocationWorkload(GetParam()), RunInvocationWorkload(GetParam()));
}

TEST_P(DeterminismTest, MigrationWorkloadDigestIsSeedStable) {
  EXPECT_EQ(RunMigrationWorkload(GetParam()), RunMigrationWorkload(GetParam()));
}

TEST_P(DeterminismTest, CheckpointWorkloadDigestIsSeedStable) {
  EXPECT_EQ(RunCheckpointWorkload(GetParam()), RunCheckpointWorkload(GetParam()));
}

TEST_P(DeterminismTest, ChaosWorkloadDigestIsSeedStable) {
  EXPECT_EQ(RunChaosWorkload(GetParam()), RunChaosWorkload(GetParam()));
}

// The span layer's determinism contract (span.h): attaching a SpanCollector
// must not change the execution by one event. SpanContext rides fixed-width
// in every message (zeros when disabled), span ids come from a collector-
// private counter, and the collector never schedules simulation work — so a
// traced run and an untraced run of the same seed are bit-identical, even
// under packet loss and the full chaos storm.
TEST_P(DeterminismTest, TracingDoesNotPerturbTheInvocationWorkload) {
  EXPECT_EQ(RunInvocationWorkload(GetParam(), /*traced=*/false),
            RunInvocationWorkload(GetParam(), /*traced=*/true));
}

TEST_P(DeterminismTest, TracingDoesNotPerturbTheChaosWorkload) {
  EXPECT_EQ(RunChaosWorkload(GetParam(), /*traced=*/false),
            RunChaosWorkload(GetParam(), /*traced=*/true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(1, 42, 1981, 0xede));

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity: the fingerprint actually depends on the execution, so the
  // equal-seed assertions above are not vacuous.
  EXPECT_NE(RunInvocationWorkload(7), RunInvocationWorkload(8));
}

TEST(DeterminismTest, TraceDigestCapturesEventOrder) {
  // Two bare simulations running identical schedules agree...
  auto run = [](SimDuration second_delay) {
    Simulation sim;
    int fired = 0;
    sim.Schedule(Microseconds(10), [&] { fired++; });
    sim.Schedule(second_delay, [&] { fired++; });
    EventId doomed = sim.Schedule(Microseconds(30), [&] { fired += 100; });
    sim.Cancel(doomed);
    sim.Run();
    EXPECT_EQ(fired, 2);
    return sim.trace().value();
  };
  EXPECT_EQ(run(Microseconds(20)), run(Microseconds(20)));
  // ...and a schedule that differs only in one event's timestamp does not.
  EXPECT_NE(run(Microseconds(20)), run(Microseconds(21)));
}

}  // namespace
}  // namespace eden
