// Edge cases of the kernel: flow-control refusals, deep invocation chains,
// frozen-object lifecycle across checkpoint/move, corrupt checkpoint records,
// checksite validation, and destroy semantics.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"
#include "tests/test_util.h"

namespace eden {
namespace {

class KernelEdgeFixture : public ::testing::Test {
 protected:
  KernelEdgeFixture() {
    RegisterStandardTypes(system_);
    system_.AddNodes(4);
  }

  InvokeResult Call(size_t node, const Capability& cap, const std::string& op,
                    InvokeArgs args = {}) {
    return system_.Await(system_.node(node).Invoke(cap, op, std::move(args)));
  }

  EdenSystem system_;
};

TEST_F(KernelEdgeFixture, InvocationClassQueueOverflowIsRefused) {
  // Class limit 1, queue limit 2: the 4th concurrent invocation is refused
  // with RESOURCE_EXHAUSTED — the "internal flow-control mechanism" of
  // section 4.2 pushing back instead of queueing without bound.
  auto type = std::make_shared<TypeManager>("throttled");
  size_t slow_class = type->AddClass("slow", 1, /*queue_limit=*/2);
  type->AddOperation(OperationSpec{
      .name = "slow",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_await ctx.Sleep(Milliseconds(100));
        co_return InvokeResult::Ok();
      },
      .invocation_class = slow_class,
  });
  system_.RegisterType(type);
  auto cap = system_.node(0).CreateObject("throttled", Representation{});
  ASSERT_TRUE(cap.ok());

  std::vector<Future<InvokeResult>> futures;
  for (int i = 0; i < 5; i++) {
    futures.push_back(system_.node(1).Invoke(*cap, "slow"));
  }
  int ok_count = 0, refused = 0;
  for (auto& future : futures) {
    InvokeResult result = system_.Await(std::move(future));
    if (result.ok()) {
      ok_count++;
    } else if (result.status.code() == StatusCode::kResourceExhausted) {
      refused++;
    }
  }
  EXPECT_EQ(ok_count, 3);  // 1 running + 2 queued
  EXPECT_EQ(refused, 2);
  EXPECT_EQ(system_.node(0).stats().queue_refusals, 2u);
}

TEST_F(KernelEdgeFixture, DeepNestedInvocationChain) {
  // 24 objects spread across nodes, each invoking the next: coroutine frames
  // stack safely and the result propagates all the way back.
  auto type = std::make_shared<TypeManager>("chain");
  type->AddClass("fwd", 2);
  type->AddOperation(OperationSpec{
      .name = "depth",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        if (ctx.rep().capability_count() == 0) {
          co_return InvokeResult::Ok(InvokeArgs{}.AddU64(1));
        }
        InvokeResult nested =
            co_await ctx.Invoke(ctx.rep().capability(0), "depth");
        if (!nested.ok()) {
          co_return nested;
        }
        co_return InvokeResult::Ok(
            InvokeArgs{}.AddU64(nested.results.U64At(0).value() + 1));
      },
      .invocation_class = 1,
  });
  system_.RegisterType(type);

  Capability next;
  for (int i = 0; i < 24; i++) {
    Representation rep;
    if (!next.IsNull()) {
      rep.AddCapability(next);
    }
    next = *system_.node(static_cast<size_t>(i) % 4).CreateObject("chain", rep);
  }
  InvokeResult result = Call(0, next, "depth");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 24u);
}

TEST_F(KernelEdgeFixture, FrozenObjectStaysFrozenAcrossReincarnation) {
  auto cap = system_.node(0).CreateObject("std.data", Representation{});
  ASSERT_TRUE(cap.ok());
  Call(0, *cap, "put", InvokeArgs{}.AddString("iced"));
  ASSERT_TRUE(Call(0, *cap, "freeze").ok());
  ASSERT_TRUE(Call(0, *cap, "checkpoint").ok());
  ASSERT_TRUE(Call(0, *cap, "crash").ok());

  // Reincarnated object must still refuse mutation.
  InvokeResult result = Call(1, *cap, "put", InvokeArgs{}.AddString("thaw?"));
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
  result = Call(1, *cap, "get");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToString(result.results.BytesAt(0).value()), "iced");
}

TEST_F(KernelEdgeFixture, FrozenObjectStaysFrozenAcrossMove) {
  auto cap = system_.node(0).CreateObject("std.data", Representation{});
  Call(0, *cap, "put", InvokeArgs{}.AddString("solid"));
  ASSERT_TRUE(Call(0, *cap, "freeze").ok());
  auto object = system_.node(0).FindActive(cap->name());
  ASSERT_TRUE(
      system_.Await(system_.node(0).MoveObject(object, system_.node(2).station()))
          .ok());
  system_.RunFor(Milliseconds(10));
  InvokeResult result = Call(1, *cap, "put", InvokeArgs{}.AddString("melted?"));
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(KernelEdgeFixture, CorruptCheckpointRecordYieldsDataLoss) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(Call(0, *cap, "checkpoint").ok());
  ASSERT_TRUE(Call(0, *cap, "crash").ok());
  // Vandalize the stored record.
  std::string key = "ckpt/" + cap->name().ToKey();
  system_.Await(system_.node(0).store().Put(key, Bytes{0xde, 0xad}));

  InvokeResult result = Call(1, *cap, "read");
  EXPECT_EQ(result.status.code(), StatusCode::kDataLoss);
}

TEST_F(KernelEdgeFixture, ChecksiteValidationRejectsSelfMirror) {
  auto type = std::make_shared<TypeManager>("policy_probe");
  type->AddOperation(OperationSpec{
      .name = "bind_checksite",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        CheckpointPolicy policy;
        policy.primary_site = static_cast<StationId>(*ctx.args().U64At(0));
        policy.level = ReliabilityLevel::kMirrored;
        policy.mirror_site = static_cast<StationId>(*ctx.args().U64At(1));
        co_return InvokeResult{ctx.SetChecksite(policy), {}};
      },
  });
  system_.RegisterType(type);
  auto cap = system_.node(0).CreateObject("policy_probe", Representation{});
  InvokeResult result =
      Call(0, *cap, "bind_checksite", InvokeArgs{}.AddU64(1).AddU64(1));
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  result = Call(0, *cap, "bind_checksite", InvokeArgs{}.AddU64(1).AddU64(2));
  EXPECT_TRUE(result.ok());
}

TEST_F(KernelEdgeFixture, DestroyFromRemoteNodeEliminatesTheObject) {
  auto cap = system_.node(0).CreateObject("std.data", Representation{});
  Call(1, *cap, "put", InvokeArgs{}.AddString("doomed"));
  ASSERT_TRUE(Call(1, *cap, "checkpoint").ok());
  ASSERT_TRUE(Call(2, *cap, "destroy").ok());
  EXPECT_FALSE(system_.node(0).IsActive(cap->name()));
  EXPECT_FALSE(system_.node(0).HasCheckpoint(cap->name()));
  InvokeResult result = Call(3, *cap, "get");
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST_F(KernelEdgeFixture, DestroyRightIsRequired) {
  auto cap = system_.node(0).CreateObject("std.data", Representation{});
  Capability no_destroy = cap->Restrict(
      Rights(Rights::kInvoke | Rights::kRead | Rights::kWrite));
  InvokeResult result = Call(1, no_destroy, "destroy");
  EXPECT_EQ(result.status.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(system_.node(0).IsActive(cap->name()));
}

TEST_F(KernelEdgeFixture, CreateOptionsBindTheInitialChecksite) {
  CreateOptions options;
  options.policy = CheckpointPolicy{system_.node(3).station(),
                                    ReliabilityLevel::kLocal, 0};
  auto cap =
      system_.node(0).CreateObject("std.counter", Representation{}, options);
  ASSERT_TRUE(cap.ok());
  Call(0, *cap, "increment", InvokeArgs{}.AddU64(4));
  ASSERT_TRUE(Call(0, *cap, "checkpoint").ok());
  // The long-term state landed at the requested checksite, not the creator.
  EXPECT_FALSE(system_.node(0).HasCheckpoint(cap->name()));
  EXPECT_TRUE(system_.node(3).HasCheckpoint(cap->name()));
  // And recovery happens there after the creator dies.
  system_.node(0).FailNode();
  InvokeResult result = Call(1, *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 4u);
  EXPECT_TRUE(system_.node(3).IsActive(cap->name()));
}

TEST_F(KernelEdgeFixture, StatsAccountForTheBasicFlows) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  Call(0, *cap, "increment");                       // local
  Call(1, *cap, "increment");                       // remote + locate
  Call(1, *cap, "increment");                       // remote, cache hit
  const KernelStats& local = system_.node(0).stats();
  const KernelStats& remote = system_.node(1).stats();
  EXPECT_EQ(local.invocations_local, 1u);
  EXPECT_EQ(remote.invocations_remote, 2u);
  EXPECT_EQ(remote.locate_queries, 1u);
  EXPECT_EQ(remote.locate_cache_hits, 1u);
  EXPECT_EQ(local.dispatches, 3u);
}

TEST_F(KernelEdgeFixture, SelfInvocationThroughOwnCapability) {
  // An object invoking an operation on ITSELF through its own capability:
  // must not deadlock as long as the operations are in classes with capacity.
  auto type = std::make_shared<TypeManager>("reflexive");
  size_t outer = type->AddClass("outer", 1);
  size_t inner = type->AddClass("inner", 1);
  type->AddOperation(OperationSpec{
      .name = "outer_op",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        InvokeResult nested =
            co_await ctx.Invoke(ctx.SelfCapability(), "inner_op");
        co_return nested;
      },
      .invocation_class = outer,
  });
  type->AddOperation(OperationSpec{
      .name = "inner_op",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(InvokeArgs{}.AddString("inner ran"));
      },
      .invocation_class = inner,
  });
  system_.RegisterType(type);
  auto cap = system_.node(0).CreateObject("reflexive", Representation{});
  InvokeResult result = Call(1, *cap, "outer_op");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.StringAt(0).value(), "inner ran");
}

}  // namespace
}  // namespace eden
