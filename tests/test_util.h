// Shared helpers for the Eden test suites.
#ifndef EDEN_TESTS_TEST_UTIL_H_
#define EDEN_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "src/kernel/context.h"
#include "src/kernel/eden_system.h"
#include "src/kernel/node_kernel.h"
#include "src/kernel/type_manager.h"

namespace eden {

// A simple counter type used across test suites:
//   increment (write class) - adds args[0] (default 1), returns new value
//   read      (read class)  - returns current value
//   reset     (write class) - sets to zero
// Representation: data segment 0 holds the count as a u64.
inline std::shared_ptr<TypeManager> MakeCounterType(int reader_concurrency = 4) {
  auto type = std::make_shared<TypeManager>("counter");
  size_t writers = type->AddClass("writers", 1);
  size_t readers = type->AddClass("readers", reader_concurrency);

  auto get_value = [](InvokeContext& ctx) -> uint64_t {
    if (ctx.rep().data_segment_count() == 0) {
      return 0;
    }
    BufferReader reader(ctx.rep().data(0));
    auto value = reader.ReadU64();
    return value.ok() ? *value : 0;
  };
  auto set_value = [](InvokeContext& ctx, uint64_t value) {
    BufferWriter writer;
    writer.WriteU64(value);
    ctx.rep().set_data(0, writer.Take());
  };

  type->AddOperation(OperationSpec{
      .name = "increment",
      .handler =
          [get_value, set_value](InvokeContext& ctx) -> Task<InvokeResult> {
        uint64_t delta = ctx.args().U64At(0).value_or(1);
        uint64_t value = get_value(ctx) + delta;
        set_value(ctx, value);
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(value));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = writers,
  });
  type->AddOperation(OperationSpec{
      .name = "read",
      .handler = [get_value](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(get_value(ctx)));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kRead),
      .invocation_class = readers,
      .read_only = true,
  });
  type->AddOperation(OperationSpec{
      .name = "reset",
      .handler = [set_value](InvokeContext& ctx) -> Task<InvokeResult> {
        set_value(ctx, 0);
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = writers,
  });
  type->AddOperation(OperationSpec{
      .name = "checkpoint",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Status status = co_await ctx.Checkpoint();
        co_return InvokeResult{status, {}};
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kCheckpoint),
      .invocation_class = writers,
  });
  type->AddOperation(OperationSpec{
      .name = "crash",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        ctx.Crash();
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kOwner),
      .invocation_class = writers,
  });
  return type;
}

// Representation holding a u64 counter value.
inline Representation CounterRep(uint64_t initial = 0) {
  Representation rep;
  BufferWriter writer;
  writer.WriteU64(initial);
  rep.set_data(0, writer.Take());
  return rep;
}

}  // namespace eden

#endif  // EDEN_TESTS_TEST_UTIL_H_
