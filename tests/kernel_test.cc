// Unit tests for the Eden kernel basics: names, capabilities,
// representations, type managers, creation and the invocation happy paths.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "tests/test_util.h"

namespace eden {
namespace {

TEST(ObjectNameTest, RoundTripsThroughCodec) {
  ObjectName name(7, 42, 0xdeadbeef);
  BufferWriter writer;
  name.Encode(writer);
  Bytes encoded = writer.Take();
  BufferReader reader(encoded);
  auto decoded = ObjectName::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, name);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ObjectNameTest, OrderingIsTotal) {
  ObjectName a(1, 1, 1), b(1, 2, 1), c(2, 1, 1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_FALSE(a < a);
}

TEST(ObjectNameTest, NullIsDetectable) {
  EXPECT_TRUE(ObjectName::Null().IsNull());
  EXPECT_FALSE(ObjectName(1, 0, 0).IsNull());
}

TEST(CapabilityTest, RestrictOnlyRemovesRights) {
  Capability cap(ObjectName(1, 1, 1), Rights::All());
  Capability restricted = cap.Restrict(Rights(Rights::kInvoke | Rights::kRead));
  EXPECT_TRUE(restricted.rights().Has(Rights::kRead));
  EXPECT_FALSE(restricted.rights().Has(Rights::kWrite));
  // Restricting again with a superset must not re-add rights.
  Capability again = restricted.Restrict(Rights::All());
  EXPECT_EQ(again.rights().bits(), restricted.rights().bits());
}

TEST(CapabilityTest, CodecRoundTrip) {
  Capability cap(ObjectName(3, 9, 27), Rights(Rights::kInvoke | Rights::kWrite));
  BufferWriter writer;
  cap.Encode(writer);
  Bytes encoded = writer.Take();
  BufferReader reader(encoded);
  auto decoded = Capability::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, cap);
}

TEST(RepresentationTest, CodecRoundTripPreservesEverything) {
  Representation rep;
  rep.SetDataFromString(0, "hello");
  rep.set_data(2, Bytes{1, 2, 3});
  rep.AddCapability(Capability(ObjectName(1, 2, 3), Rights::All()));
  rep.AddCapability(Capability(ObjectName(4, 5, 6), Rights(Rights::kRead)));

  BufferWriter writer;
  rep.Encode(writer);
  Bytes encoded = writer.Take();
  BufferReader reader(encoded);
  auto decoded = Representation::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rep);
  EXPECT_EQ(decoded->DigestValue(), rep.DigestValue());
}

TEST(RepresentationTest, DecodeRejectsTruncation) {
  Representation rep;
  rep.SetDataFromString(0, "some state");
  BufferWriter writer;
  rep.Encode(writer);
  Bytes encoded = writer.Take();
  encoded.resize(encoded.size() / 2);
  BufferReader reader(encoded);
  EXPECT_FALSE(Representation::Decode(reader).ok());
}

TEST(TypeManagerTest, DefaultClassGivesMutualExclusion) {
  TypeManager type("t");
  ASSERT_EQ(type.classes().size(), 1u);
  EXPECT_EQ(type.classes()[0].concurrency_limit, 1);
}

TEST(TypeManagerTest, FindOperationByName) {
  auto type = MakeCounterType();
  EXPECT_NE(type->FindOperation("increment"), nullptr);
  EXPECT_NE(type->FindOperation("read"), nullptr);
  EXPECT_EQ(type->FindOperation("nonexistent"), nullptr);
  EXPECT_TRUE(type->FindOperation("read")->read_only);
  EXPECT_FALSE(type->FindOperation("increment")->read_only);
}

class KernelFixture : public ::testing::Test {
 protected:
  KernelFixture() {
    system_.RegisterType(MakeCounterType());
    system_.AddNodes(3);
  }

  InvokeResult Call(NodeKernel& from, const Capability& cap, const std::string& op,
                    InvokeArgs args = {}) {
    return system_.Await(from.Invoke(cap, op, std::move(args)));
  }

  EdenSystem system_;
};

TEST_F(KernelFixture, CreateObjectReturnsOwnerCapability) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  EXPECT_FALSE(cap->IsNull());
  EXPECT_TRUE(cap->rights().Has(Rights::kOwner));
  EXPECT_TRUE(system_.node(0).IsActive(cap->name()));
  EXPECT_EQ(cap->name().birth_node(), system_.node(0).station());
}

TEST_F(KernelFixture, CreateObjectOfUnknownTypeFails) {
  auto cap = system_.node(0).CreateObject("no-such-type", Representation{});
  EXPECT_FALSE(cap.ok());
  EXPECT_EQ(cap.status().code(), StatusCode::kNotFound);
}

TEST_F(KernelFixture, LocalInvocationRunsOperation) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep(10));
  ASSERT_TRUE(cap.ok());
  InvokeResult result = Call(system_.node(0), *cap, "increment",
                             InvokeArgs{}.AddU64(5));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 15u);
}

TEST_F(KernelFixture, RemoteInvocationIsLocationTransparent) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  // Node 2 has never heard of this object: the kernel locates it by
  // broadcast and forwards the invocation (paper section 4.2).
  InvokeResult result = Call(system_.node(2), *cap, "increment");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 1u);
  // Second invocation hits the location cache.
  uint64_t broadcasts_before = system_.node(2).stats().locate_broadcasts;
  result = Call(system_.node(2), *cap, "increment");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 2u);
  EXPECT_EQ(system_.node(2).stats().locate_broadcasts, broadcasts_before);
}

TEST_F(KernelFixture, RightsAreEnforcedPerOperation) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Capability read_only = cap->Restrict(Rights(Rights::kInvoke | Rights::kRead));
  // Reads are allowed.
  InvokeResult result = Call(system_.node(1), read_only, "read");
  EXPECT_TRUE(result.ok()) << result.status;
  // Writes are not.
  result = Call(system_.node(1), read_only, "increment");
  EXPECT_EQ(result.status.code(), StatusCode::kPermissionDenied);
  // And the object was not modified.
  result = Call(system_.node(1), read_only, "read");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 0u);
}

TEST_F(KernelFixture, UnknownOperationIsUnimplemented) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  InvokeResult result = Call(system_.node(0), *cap, "frobnicate");
  EXPECT_EQ(result.status.code(), StatusCode::kUnimplemented);
}

TEST_F(KernelFixture, InvokingMissingObjectIsUnavailable) {
  Capability bogus(ObjectName(99, 1234, 1), Rights::All());
  InvokeResult result = Call(system_.node(0), bogus, "read");
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST_F(KernelFixture, NullCapabilityIsRejected) {
  InvokeResult result = Call(system_.node(0), Capability::Null(), "read");
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(KernelFixture, InvocationTimeoutFires) {
  // An unreachable object with a short user-supplied timeout: the kernel
  // notifies the invoker (paper: "the invoker wishes to be notified if the
  // invocation is not completed within some time limit").
  Capability bogus(ObjectName(99, 1234, 1), Rights::All());
  Future<InvokeResult> future =
      system_.node(0).Invoke(bogus, "read", {}, InvokeOptions::WithTimeout(Milliseconds(5)));
  InvokeResult result = system_.Await(future);
  // Either the locate gives up (Unavailable) or the timeout fires first.
  EXPECT_FALSE(result.ok());
}

TEST_F(KernelFixture, NestedInvocationAcrossNodes) {
  // An object on node 0 invokes a counter on node 1 from within its own
  // operation handler (object-to-object invocation).
  auto inner = system_.node(1).CreateObject("counter", CounterRep());
  ASSERT_TRUE(inner.ok());

  auto proxy_type = std::make_shared<TypeManager>("proxy");
  proxy_type->AddOperation(OperationSpec{
      .name = "bump_other",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto target = ctx.args().CapabilityAt(0);
        if (!target.ok()) {
          co_return InvokeResult::Error(target.status());
        }
        InvokeResult nested = co_await ctx.Invoke(*target, "increment",
                                                  InvokeArgs{}.AddU64(7));
        co_return nested;
      },
  });
  system_.RegisterType(proxy_type);

  auto proxy = system_.node(0).CreateObject("proxy", Representation{});
  ASSERT_TRUE(proxy.ok());
  InvokeResult result = Call(system_.node(2), *proxy, "bump_other",
                             InvokeArgs{}.AddCapability(*inner));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 7u);
}

TEST_F(KernelFixture, ManySequentialInvocationsAreStable) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  for (int i = 1; i <= 50; i++) {
    InvokeResult result = Call(system_.node(i % 3), *cap, "increment");
    ASSERT_TRUE(result.ok()) << "iteration " << i << ": " << result.status;
    EXPECT_EQ(result.results.U64At(0).value(), static_cast<uint64_t>(i));
  }
}

TEST(KernelConfigTest, SeededRunsAreDeterministic) {
  auto run_once = [](uint64_t seed) {
    SystemConfig config;
    config.seed = seed;
    EdenSystem system(config);
    system.RegisterType(MakeCounterType());
    system.AddNodes(3);
    auto cap = system.node(0).CreateObject("counter", CounterRep());
    uint64_t last = 0;
    for (int i = 0; i < 10; i++) {
      InvokeResult result =
          system.Await(system.node(i % 3).Invoke(*cap, "increment"));
      last = result.results.U64At(0).value_or(0);
    }
    return std::make_pair(system.sim().now(), last);
  };
  auto a = run_once(42);
  auto b = run_once(42);
  auto c = run_once(43);
  EXPECT_EQ(a, b);
  // Different seeds may differ in timing (collision backoff draws).
  EXPECT_EQ(a.second, c.second);  // but not in semantics
}

}  // namespace
}  // namespace eden
