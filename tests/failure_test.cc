// Randomized failure-injection sweeps: nodes crash and restart at seeded
// random points during a live workload. Core guarantee under test (paper
// section 4.4): checkpointed state is never lost, and the system always
// returns to full service once nodes are back.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

class FailureInjectionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FailureInjectionProperty, CheckpointedMonotonicLogSurvivesAnyCrashSchedule) {
  SystemConfig config;
  config.seed = GetParam();
  EdenSystem system(config);
  RegisterStandardTypes(system);
  constexpr size_t kNodes = 5;
  system.AddNodes(kNodes);

  // A write-through log: every accepted append is checkpointed before the
  // reply, so an acknowledged append must never disappear.
  auto type = std::make_shared<AbstractType>("wal", StdObjectType());
  type->AddClass("writers", 1);
  type->AddOperation(AbstractOperation{
      .name = "append",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto entry = ctx.args().U64At(0);
        if (!entry.ok()) {
          co_return InvokeResult::Error(entry.status());
        }
        Bytes& log = ctx.rep().mutable_data(0);
        BufferWriter writer;
        writer.WriteU64(*entry);
        log.insert(log.end(), writer.buffer().begin(), writer.buffer().end());
        Status durable = co_await ctx.Checkpoint();
        if (!durable.ok()) {
          co_return InvokeResult::Error(durable);
        }
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(log.size() / 8));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "writers",
  });
  type->AddOperation(AbstractOperation{
      .name = "entries",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Bytes log = ctx.rep().data_segment_count() ? ctx.rep().data(0) : Bytes{};
        InvokeArgs out;
        BufferReader reader(log);
        while (!reader.AtEnd()) {
          auto entry = reader.ReadU64();
          if (!entry.ok()) {
            break;
          }
          out.AddU64(*entry);
        }
        co_return InvokeResult::Ok(std::move(out));
      },
      .read_only = true,
  });
  system.RegisterType(type->BuildTypeManager());

  auto log = system.node(0).CreateObject("wal", Representation{});
  ASSERT_TRUE(log.ok());
  // Give the object long-term state before the chaos starts: an object that
  // never checkpointed dies with its node's volatile memory — by design
  // (paper section 4.4) — which is not the property under test here.
  ASSERT_TRUE(system.Await(system.node(0).CheckpointObject(log->name())).ok());

  Rng chaos(GetParam() * 7919);
  std::vector<uint64_t> acknowledged;
  uint64_t next_entry = 1;
  for (int round = 0; round < 30; round++) {
    // Random chaos: fail or restart a random non-driver node. Node 4 is the
    // driver and never fails (someone must observe the system).
    if (chaos.NextBool(0.3)) {
      size_t victim = chaos.NextBelow(kNodes - 1);
      if (system.node(victim).failed()) {
        system.node(victim).RestartNode();
      } else {
        system.node(victim).FailNode();
        // Never leave everything dead: restart after a random delay.
        system.sim().Schedule(Milliseconds(chaos.NextInRange(50, 400)),
                              [&system, victim] {
                                if (system.node(victim).failed()) {
                                  system.node(victim).RestartNode();
                                }
                              });
      }
    }
    uint64_t entry = next_entry++;
    InvokeResult result = system.Await(system.node(4).Invoke(
        *log, "append", InvokeArgs{}.AddU64(entry), InvokeOptions::WithTimeout(Seconds(20))));
    if (result.ok()) {
      acknowledged.push_back(entry);
    }
    system.RunFor(Milliseconds(chaos.NextInRange(0, 100)));
  }

  // Restore everything and read the final log.
  for (size_t n = 0; n < kNodes; n++) {
    if (system.node(n).failed()) {
      system.node(n).RestartNode();
    }
  }
  InvokeResult final_log =
      system.Await(system.node(4).Invoke(*log, "entries", {}, InvokeOptions::WithTimeout(Seconds(30))));
  ASSERT_TRUE(final_log.ok()) << final_log.status;

  std::vector<uint64_t> persisted;
  for (size_t i = 0; i < final_log.results.data.size(); i++) {
    persisted.push_back(final_log.results.U64At(i).value());
  }

  // 1. Every acknowledged append is present (durability of checkpointed
  //    state). Unacknowledged appends may or may not be present.
  size_t cursor = 0;
  for (uint64_t entry : acknowledged) {
    bool found = false;
    for (; cursor < persisted.size(); cursor++) {
      if (persisted[cursor] == entry) {
        found = true;
        cursor++;
        break;
      }
    }
    ASSERT_TRUE(found) << "acknowledged entry " << entry
                       << " missing from the recovered log (seed "
                       << GetParam() << ")";
  }
  // 2. The log is strictly increasing (no duplicated or reordered appends).
  for (size_t i = 1; i < persisted.size(); i++) {
    EXPECT_LT(persisted[i - 1], persisted[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(CrashSchedules, FailureInjectionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace eden
