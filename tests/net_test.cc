// Unit tests for the simulated Ethernet and the reliable transport.
#include <gtest/gtest.h>

#include "src/net/lan.h"
#include "src/net/transport.h"
#include "src/sim/simulation.h"

namespace eden {
namespace {

TEST(LanTest, UnicastFrameIsDeliveredWithWireDelay) {
  Simulation sim;
  Lan lan(sim);
  Station* a = lan.AttachStation();
  Station* b = lan.AttachStation();

  bool delivered = false;
  b->SetReceiveHandler([&](const Frame& frame) {
    delivered = true;
    EXPECT_EQ(frame.src, a->id());
    EXPECT_EQ(ToString(frame.header), "ping");
  });
  a->Send(Frame{0, b->id(), ToBytes("ping")});
  sim.Run();
  EXPECT_TRUE(delivered);
  // 64-byte minimum frame at 10 Mb/s = 51.2 us + 5 us propagation.
  EXPECT_GE(sim.now(), Microseconds(56));
  EXPECT_LT(sim.now(), Microseconds(80));
  EXPECT_EQ(lan.stats().frames_sent, 1u);
  EXPECT_EQ(lan.stats().frames_delivered, 1u);
}

TEST(LanTest, BroadcastReachesEveryoneButSender) {
  Simulation sim;
  Lan lan(sim);
  Station* sender = lan.AttachStation();
  int received = 0;
  for (int i = 0; i < 4; i++) {
    Station* s = lan.AttachStation();
    s->SetReceiveHandler([&received](const Frame&) { received++; });
  }
  sender->SetReceiveHandler([&received](const Frame&) { received += 100; });
  sender->Send(Frame{0, kBroadcastStation, ToBytes("hello all")});
  sim.Run();
  EXPECT_EQ(received, 4);
}

TEST(LanTest, FramesFromOneStationStayOrdered) {
  Simulation sim;
  Lan lan(sim);
  Station* a = lan.AttachStation();
  Station* b = lan.AttachStation();
  std::vector<std::string> seen;
  b->SetReceiveHandler(
      [&](const Frame& frame) { seen.push_back(ToString(frame.header)); });
  for (int i = 0; i < 10; i++) {
    a->Send(Frame{0, b->id(), ToBytes("m" + std::to_string(i))});
  }
  sim.Run();
  ASSERT_EQ(seen.size(), 10u);
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(seen[i], "m" + std::to_string(i));
  }
}

TEST(LanTest, ContendingStationsAllEventuallyTransmit) {
  Simulation sim;
  Lan lan(sim);
  constexpr int kStations = 8;
  Station* sink = lan.AttachStation();
  int received = 0;
  sink->SetReceiveHandler([&](const Frame&) { received++; });
  std::vector<Station*> stations;
  for (int i = 0; i < kStations; i++) {
    stations.push_back(lan.AttachStation());
  }
  // Everyone transmits "simultaneously": collisions + backoff must resolve.
  for (Station* s : stations) {
    s->Send(Frame{0, sink->id(), Bytes(512)});
  }
  sim.Run();
  EXPECT_EQ(received, kStations);
  EXPECT_EQ(lan.stats().transmit_failures, 0u);
}

TEST(LanTest, LossInjectionDropsFrames) {
  Simulation sim;
  LanConfig config;
  config.loss_probability = 1.0;
  Lan lan(sim, config);
  Station* a = lan.AttachStation();
  Station* b = lan.AttachStation();
  bool delivered = false;
  b->SetReceiveHandler([&](const Frame&) { delivered = true; });
  a->Send(Frame{0, b->id(), ToBytes("doomed")});
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(lan.stats().frames_lost, 1u);
}

TEST(LanTest, PartitionBlocksCrossGroupTraffic) {
  Simulation sim;
  Lan lan(sim);
  Station* a = lan.AttachStation();
  Station* b = lan.AttachStation();
  Station* c = lan.AttachStation();
  int b_got = 0, c_got = 0;
  b->SetReceiveHandler([&](const Frame&) { b_got++; });
  c->SetReceiveHandler([&](const Frame&) { c_got++; });

  lan.SetPartitionGroup(c->id(), 1);
  a->Send(Frame{0, kBroadcastStation, ToBytes("hi")});
  sim.Run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);

  lan.ClearPartitions();
  a->Send(Frame{0, c->id(), ToBytes("hi again")});
  sim.Run();
  EXPECT_EQ(c_got, 1);
}

TEST(LanTest, DetachedStationIsUnreachable) {
  Simulation sim;
  Lan lan(sim);
  Station* a = lan.AttachStation();
  Station* b = lan.AttachStation();
  int received = 0;
  b->SetReceiveHandler([&](const Frame&) { received++; });
  lan.DetachStation(b->id());
  a->Send(Frame{0, b->id(), ToBytes("void")});
  sim.Run();
  EXPECT_EQ(received, 0);
  lan.ReattachStation(b->id());
  a->Send(Frame{0, b->id(), ToBytes("back")});
  sim.Run();
  EXPECT_EQ(received, 1);
}

TEST(LanTest, FrameTimeScalesWithSize) {
  Simulation sim;
  Lan lan(sim);
  SimDuration small = lan.FrameTime(64);
  SimDuration big = lan.FrameTime(1500);
  EXPECT_GT(big, small);
  // 1500+38 bytes at 10 Mb/s = ~1230 us.
  EXPECT_NEAR(static_cast<double>(big), 1230.4e3, 1e3);
}

class TransportFixture : public ::testing::Test {
 protected:
  TransportFixture() : lan_(sim_) {}

  Simulation sim_;
  Lan lan_;
};

TEST_F(TransportFixture, SmallMessageRoundTrip) {
  Transport a(sim_, lan_), b(sim_, lan_);
  std::string received;
  b.SetHandler([&](StationId src, BytesView message) {
    EXPECT_EQ(src, a.station_id());
    received = ToString(message);
  });
  a.SendReliable(b.station_id(), ToBytes("kernel message"));
  sim_.Run();
  EXPECT_EQ(received, "kernel message");
  EXPECT_EQ(b.stats().messages_delivered, 1u);
}

TEST_F(TransportFixture, LargeMessageIsFragmentedAndReassembled) {
  Transport a(sim_, lan_), b(sim_, lan_);
  Bytes big(100 * 1024);
  for (size_t i = 0; i < big.size(); i++) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  Bytes received;
  b.SetHandler([&](StationId, BytesView message) { received = message.ToBytes(); });
  a.SendReliable(b.station_id(), big);
  sim_.Run();
  EXPECT_EQ(received, big);
  EXPECT_GT(a.stats().fragments_sent, 60u);  // ~1.5 KB MTU
}

TEST_F(TransportFixture, LossyWireIsSurvivedByRetransmission) {
  lan_.set_loss_probability(0.2);
  Transport a(sim_, lan_), b(sim_, lan_);
  int delivered = 0;
  b.SetHandler([&](StationId, BytesView) { delivered++; });
  for (int i = 0; i < 20; i++) {
    a.SendReliable(b.station_id(), Bytes(3000));
  }
  sim_.Run();
  EXPECT_EQ(delivered, 20);
  EXPECT_GT(a.stats().retransmits, 0u);
}

TEST_F(TransportFixture, DuplicatesAreSuppressedExactlyOnceDelivery) {
  // Drop many frames so acks get lost and retransmissions duplicate.
  lan_.set_loss_probability(0.3);
  Transport a(sim_, lan_), b(sim_, lan_);
  int delivered = 0;
  b.SetHandler([&](StationId, BytesView) { delivered++; });
  for (int i = 0; i < 30; i++) {
    a.SendReliable(b.station_id(), ToBytes("msg" + std::to_string(i)));
  }
  sim_.Run();
  EXPECT_EQ(delivered, 30);  // never more than once each
}

TEST_F(TransportFixture, BestEffortBroadcastReachesAll) {
  Transport a(sim_, lan_), b(sim_, lan_), c(sim_, lan_);
  int received = 0;
  b.SetHandler([&](StationId, BytesView) { received++; });
  c.SetHandler([&](StationId, BytesView) { received++; });
  a.SendBestEffort(kBroadcastStation, ToBytes("who has object 42?"));
  sim_.Run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(a.stats().acks_sent, 0u);
  EXPECT_EQ(b.stats().acks_sent, 0u);
}

TEST_F(TransportFixture, GivesUpAfterMaxRetransmits) {
  Transport a(sim_, lan_), b(sim_, lan_);
  lan_.DetachStation(b.station_id());
  a.SendReliable(b.station_id(), ToBytes("into the void"));
  sim_.Run();
  EXPECT_EQ(a.stats().send_failures, 1u);
  EXPECT_EQ(b.stats().messages_delivered, 0u);
}

// --- ACK coalescing ----------------------------------------------------------

TEST_F(TransportFixture, PiggybackedAckSuppressesStandaloneAckAndRetransmit) {
  // ACK delay far beyond the retransmit timeout: if the ACK had to wait for
  // its own frame, the sender would retransmit. Reverse data traffic carries
  // it in time instead.
  TransportConfig config;
  config.ack_delay = Milliseconds(50);
  Transport a(sim_, lan_, config), b(sim_, lan_, config);
  std::string reply;
  b.SetHandler([&](StationId src, BytesView) {
    b.SendReliable(src, ToBytes("reply"));
  });
  a.SetHandler([&](StationId, BytesView message) { reply = ToString(message); });
  a.SendReliable(b.station_id(), ToBytes("request"));
  sim_.RunFor(Milliseconds(10));  // before a's 20 ms retransmit deadline

  EXPECT_EQ(reply, "reply");
  EXPECT_EQ(b.stats().acks_piggybacked, 1u);  // rode b's reply frame
  EXPECT_EQ(b.stats().acks_sent, 0u);         // no standalone ACK frame
  EXPECT_EQ(a.stats().retransmits, 0u);

  // a has no reverse traffic for b's reply: its ACK goes standalone, delayed
  // (past b's retransmit timeout here, so b may retransmit — harmless).
  sim_.Run();
  EXPECT_GE(a.stats().acks_sent, 1u);
  EXPECT_EQ(b.stats().send_failures, 0u);
}

TEST_F(TransportFixture, DelayedAcksBatchIntoOneFrame) {
  TransportConfig config;
  config.ack_delay = Milliseconds(5);
  Transport a(sim_, lan_, config), b(sim_, lan_, config);
  int delivered = 0;
  b.SetHandler([&](StationId, BytesView) { delivered++; });
  for (int i = 0; i < 10; i++) {
    a.SendReliable(b.station_id(), ToBytes("m" + std::to_string(i)));
  }
  sim_.Run();
  EXPECT_EQ(delivered, 10);
  // All ten land well inside one ack_delay window: one ACK frame, ten ids.
  EXPECT_EQ(b.stats().acks_sent, 1u);
  EXPECT_EQ(b.stats().ack_ids_sent, 10u);
  EXPECT_EQ(a.stats().retransmits, 0u);
}

TEST_F(TransportFixture, DelayedAckFiresOnTimer) {
  TransportConfig config;
  config.ack_delay = Milliseconds(2);
  Transport a(sim_, lan_, config), b(sim_, lan_, config);
  b.SetHandler([](StationId, BytesView) {});
  a.SendReliable(b.station_id(), ToBytes("ping"));
  sim_.RunFor(Milliseconds(1));  // delivered (~60 us), ACK still waiting
  EXPECT_EQ(b.stats().messages_delivered, 1u);
  EXPECT_EQ(b.stats().acks_sent, 0u);
  sim_.RunFor(Milliseconds(3));  // past delivery + ack_delay
  EXPECT_EQ(b.stats().acks_sent, 1u);
  EXPECT_EQ(b.stats().ack_ids_sent, 1u);
}

TEST_F(TransportFixture, DedupWindowStillHonoredWithBatchedAcks) {
  // ACK delay beyond the retransmit timeout forces duplicate data frames;
  // the receiver must deliver exactly once and re-ACK the duplicates.
  TransportConfig config;
  config.ack_delay = Milliseconds(50);
  config.retransmit_timeout = Milliseconds(10);
  Transport a(sim_, lan_, config), b(sim_, lan_, config);
  int delivered = 0;
  b.SetHandler([&](StationId, BytesView) { delivered++; });
  a.SendReliable(b.station_id(), ToBytes("exactly once"));
  sim_.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(a.stats().retransmits, 1u);
  EXPECT_GE(b.stats().duplicates_suppressed, 1u);
  EXPECT_EQ(a.stats().send_failures, 0u);
}

TEST_F(TransportFixture, ZeroAckDelayAcksImmediately) {
  TransportConfig config;
  config.ack_delay = 0;
  Transport a(sim_, lan_, config), b(sim_, lan_, config);
  b.SetHandler([](StationId, BytesView) {});
  a.SendReliable(b.station_id(), ToBytes("now"));
  sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(b.stats().acks_sent, 1u);
  EXPECT_EQ(a.stats().retransmits, 0u);
}

TEST_F(TransportFixture, ResetDropsPendingState) {
  Transport a(sim_, lan_), b(sim_, lan_);
  lan_.DetachStation(b.station_id());
  a.SendReliable(b.station_id(), ToBytes("doomed"));
  sim_.RunFor(Milliseconds(5));
  a.Reset();
  sim_.Run();
  // After reset nothing is retransmitted and no failure is recorded for it.
  EXPECT_EQ(a.stats().send_failures, 0u);
}

// --- Frame checksums vs. wire corruption (chaos hook) ------------------------

// Scripted fault hook: corrupts the next `n` deliveries, passes the rest.
class CorruptNextN : public WireFaultHook {
 public:
  explicit CorruptNextN(int n) : remaining_(n) {}
  Decision OnDeliver(StationId, StationId, size_t) override {
    Decision decision;
    if (remaining_ > 0) {
      remaining_--;
      decision.corrupt = true;
    }
    return decision;
  }

 private:
  int remaining_;
};

TEST_F(TransportFixture, CorruptedFrameIsDroppedAndRetransmitted) {
  CorruptNextN hook(1);  // the first delivery (the data frame) gets a bit flip
  lan_.set_fault_hook(&hook);
  Transport a(sim_, lan_), b(sim_, lan_);
  std::string received;
  b.SetHandler([&](StationId, BytesView message) { received = ToString(message); });
  a.SendReliable(b.station_id(), ToBytes("checksummed"));
  sim_.Run();
  // The CRC caught the flip, the receiver dropped the frame without acking,
  // and the retransmit delivered the payload intact — exactly once.
  EXPECT_EQ(received, "checksummed");
  EXPECT_EQ(lan_.stats().frames_corrupted, 1u);
  EXPECT_GE(b.stats().frames_corrupt_dropped, 1u);
  EXPECT_GT(a.stats().retransmits, 0u);
  EXPECT_EQ(b.stats().messages_delivered, 1u);
}

// Corrupt every third delivery — data frames, fragments and acks alike. The
// checksums must turn corruption into loss, and the retransmit machinery must
// turn loss into exactly-once delivery.
class CorruptEveryThird : public WireFaultHook {
 public:
  Decision OnDeliver(StationId, StationId, size_t) override {
    Decision decision;
    decision.corrupt = (++count_ % 3) == 0;
    return decision;
  }

 private:
  int count_ = 0;
};

TEST_F(TransportFixture, CorruptionStormStillDeliversExactlyOnce) {
  CorruptEveryThird hook;
  lan_.set_fault_hook(&hook);
  Transport a(sim_, lan_), b(sim_, lan_);
  int delivered = 0;
  b.SetHandler([&](StationId, BytesView) { delivered++; });
  for (int i = 0; i < 30; i++) {
    a.SendReliable(b.station_id(), ToBytes("msg" + std::to_string(i)));
  }
  sim_.Run();
  EXPECT_EQ(delivered, 30);  // nothing lost, nothing doubled
  EXPECT_GT(lan_.stats().frames_corrupted, 0u);
  // Every corrupted frame was caught by a checksum — including flips that
  // landed on the kind tag itself — and dropped by exactly one receiver.
  EXPECT_EQ(a.stats().frames_corrupt_dropped + b.stats().frames_corrupt_dropped,
            lan_.stats().frames_corrupted);
}

TEST_F(TransportFixture, CorruptedFragmentOnlyCostsThatFragment) {
  CorruptNextN hook(1);
  lan_.set_fault_hook(&hook);
  Transport a(sim_, lan_), b(sim_, lan_);
  Bytes big(20 * 1024);
  for (size_t i = 0; i < big.size(); i++) {
    big[i] = static_cast<uint8_t>(i * 13);
  }
  Bytes received;
  b.SetHandler([&](StationId, BytesView message) { received = message.ToBytes(); });
  a.SendReliable(b.station_id(), big);
  sim_.Run();
  // Reassembly still succeeds byte-for-byte; only the corrupted fragment was
  // retransmitted, not the whole message.
  EXPECT_EQ(received, big);
  EXPECT_EQ(b.stats().frames_corrupt_dropped, 1u);
  EXPECT_EQ(a.stats().retransmits, 1u);
}

}  // namespace
}  // namespace eden
