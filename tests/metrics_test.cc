// Tests for the metrics subsystem: histogram bucket geometry and percentile
// math, registry merge/rollup semantics, the JSON exports (metrics registry
// and Chrome trace) round-tripped through a minimal in-test parser, the
// InvokeOptions API, and the fluent topology builder.
#include <cctype>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "src/metrics/metrics.h"
#include "src/trace/trace.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

// --- A minimal JSON parser, just enough to round-trip our own output ------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue& at(const std::string& key) const {
    static const JsonValue kMissing;
    auto it = fields.find(key);
    return it == fields.end() ? kMissing : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) { return Value(out) && (Skip(), pos_ == text_.size()); }

 private:
  void Skip() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }
  bool Literal(const char* word) {
    size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String(std::string* out) {
    Skip();
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    pos_++;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            // Our writer only emits \u00XX control escapes.
            if (pos_ + 4 > text_.size()) return false;
            c = static_cast<char>(std::stoi(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          default: c = esc; break;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    pos_++;  // closing quote
    return true;
  }
  bool Value(JsonValue* out) {
    Skip();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      pos_++;
      out->kind = JsonValue::kObject;
      Skip();
      if (pos_ < text_.size() && text_[pos_] == '}') { pos_++; return true; }
      while (true) {
        std::string key;
        if (!String(&key)) return false;
        Skip();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        JsonValue child;
        if (!Value(&child)) return false;
        out->fields[key] = std::move(child);
        Skip();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { pos_++; continue; }
        if (text_[pos_] == '}') { pos_++; return true; }
        return false;
      }
    }
    if (c == '[') {
      pos_++;
      out->kind = JsonValue::kArray;
      Skip();
      if (pos_ < text_.size() && text_[pos_] == ']') { pos_++; return true; }
      while (true) {
        JsonValue child;
        if (!Value(&child)) return false;
        out->items.push_back(std::move(child));
        Skip();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { pos_++; continue; }
        if (text_[pos_] == ']') { pos_++; return true; }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return String(&out->text);
    }
    if (c == 't') { out->kind = JsonValue::kBool; out->boolean = true; return Literal("true"); }
    if (c == 'f') { out->kind = JsonValue::kBool; out->boolean = false; return Literal("false"); }
    if (c == 'n') { out->kind = JsonValue::kNull; return Literal("null"); }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E')) {
      end++;
    }
    if (end == pos_) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseJsonOrDie(const std::string& text) {
  JsonValue value;
  JsonParser parser(text);
  EXPECT_TRUE(parser.Parse(&value)) << "unparseable JSON: " << text.substr(0, 200);
  return value;
}

// --- Histogram bucket geometry --------------------------------------------

TEST(HistogramBuckets, GeometryIsConsistent) {
  // Every bucket's lower bound maps back to that bucket, and the value just
  // below the next bucket's lower bound still lands in this bucket.
  for (size_t i = 0; i < Histogram::kBucketCount - 1; i++) {
    uint64_t lo = Histogram::BucketLowerBound(i);
    uint64_t width = Histogram::BucketWidth(i);
    ASSERT_GT(width, 0u) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketFor(lo), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketFor(lo + width - 1), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketLowerBound(i + 1), lo + width) << "bucket " << i;
  }
}

TEST(HistogramBuckets, RelativeErrorIsBounded) {
  // Log-linear with 16 sub-buckets: bucket width <= value/16 above the
  // first (linear) octaves, so percentile error stays ~6%.
  for (uint64_t value : {100ull, 1000ull, 123456ull, 999999999ull, 1ull << 40}) {
    size_t bucket = Histogram::BucketFor(value);
    uint64_t lo = Histogram::BucketLowerBound(bucket);
    uint64_t width = Histogram::BucketWidth(bucket);
    EXPECT_LE(lo, value);
    EXPECT_LT(value, lo + width);
    if (value >= Histogram::kSubBuckets * Histogram::kSubBuckets) {
      EXPECT_LE(width, value / Histogram::kSubBuckets + 1);
    }
  }
}

// --- Percentile math -------------------------------------------------------

TEST(HistogramPercentile, EmptyHistogramReturnsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramPercentile, UniformSamplesWithinBucketError) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) {
    h.Record(Microseconds(i));
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), Microseconds(1));
  EXPECT_EQ(h.max(), Microseconds(1000));
  EXPECT_EQ(h.mean(), h.sum() / 1000);
  // 1/16 bucket resolution: allow 8% relative error.
  for (double p : {0.50, 0.90, 0.99}) {
    double expect = 1000.0 * p;
    double got = static_cast<double>(h.Percentile(p)) / 1000.0;  // -> us
    EXPECT_NEAR(got, expect, expect * 0.08) << "p" << p * 100;
  }
  // Percentiles are clamped into [min, max].
  EXPECT_GE(h.Percentile(0.0), h.min());
  EXPECT_LE(h.Percentile(1.0), h.max());
}

TEST(HistogramPercentile, SingleValueEveryPercentileIsThatValue) {
  Histogram h;
  h.Record(Milliseconds(7));
  for (double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Percentile(p), Milliseconds(7));
  }
}

TEST(HistogramPercentile, MergePreservesDistribution) {
  Histogram a, b, reference;
  for (int i = 1; i <= 500; i++) {
    a.Record(Microseconds(i));
    reference.Record(Microseconds(i));
  }
  for (int i = 501; i <= 1000; i++) {
    b.Record(Microseconds(i * 10));
    reference.Record(Microseconds(i * 10));
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), reference.count());
  EXPECT_EQ(a.sum(), reference.sum());
  EXPECT_EQ(a.min(), reference.min());
  EXPECT_EQ(a.max(), reference.max());
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Percentile(p), reference.Percentile(p)) << "p" << p * 100;
  }
}

// StatsSince is the telemetry scraper's fused walk; it must return exactly
// what the composed DeltaSince + Percentile path returns, sample for sample,
// or scrape series would depend on which path computed them.
TEST(HistogramPercentile, StatsSinceMatchesDeltaSincePlusPercentile) {
  Histogram h;
  Histogram snapshot;  // empty snapshot: the first scrape's window
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int tick = 0; tick < 50; tick++) {
    int samples = tick % 7;  // includes idle ticks (0 new samples)
    for (int s = 0; s < samples; s++) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      h.Record(static_cast<SimDuration>(x % Milliseconds(20)));
    }
    Histogram delta = h.DeltaSince(snapshot);
    Histogram::WindowStats w = h.StatsSince(snapshot);
    EXPECT_EQ(w.count, delta.count()) << "tick " << tick;
    EXPECT_EQ(w.p50, delta.Percentile(0.5)) << "tick " << tick;
    EXPECT_EQ(w.p99, delta.Percentile(0.99)) << "tick " << tick;
    EXPECT_EQ(w.max, delta.max()) << "tick " << tick;
    snapshot = h;
  }
}

// --- Registry semantics ----------------------------------------------------

TEST(MetricsRegistry, InstrumentsAreStableAndNamed) {
  MetricsRegistry registry;
  Counter& c = registry.counter("a.count");
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(&registry.counter("a.count"), &c);  // same instrument
  EXPECT_EQ(registry.CounterValue("a.count"), 5u);
  EXPECT_EQ(registry.CounterValue("never.touched"), 0u);
  EXPECT_EQ(registry.FindCounter("never.touched"), nullptr);

  registry.gauge("a.level").Set(10);
  registry.gauge("a.level").Add(-3);
  EXPECT_EQ(registry.FindGauge("a.level")->value(), 7);
}

TEST(MetricsRegistry, MergeSumsCountersAndGaugesMergesHistograms) {
  MetricsRegistry a, b;
  a.counter("shared").Increment(2);
  b.counter("shared").Increment(3);
  b.counter("only_b").Increment(7);
  a.gauge("level").Set(5);
  b.gauge("level").Set(6);
  a.histogram("lat").Record(Microseconds(100));
  b.histogram("lat").Record(Microseconds(300));

  a.MergeFrom(b);
  EXPECT_EQ(a.CounterValue("shared"), 5u);
  EXPECT_EQ(a.CounterValue("only_b"), 7u);
  EXPECT_EQ(a.FindGauge("level")->value(), 11);  // gauges add across nodes
  EXPECT_EQ(a.FindHistogram("lat")->count(), 2u);
  EXPECT_EQ(a.FindHistogram("lat")->min(), Microseconds(100));
  EXPECT_EQ(a.FindHistogram("lat")->max(), Microseconds(300));
}

// --- System integration: rollup, stats compatibility, JSON ----------------

class MetricsSystemTest : public testing::Test {
 protected:
  MetricsSystemTest() {
    RegisterStandardTypes(system_);
    system_.AddNodes(3);
  }

  EdenSystem system_;
};

TEST_F(MetricsSystemTest, RollupSumsNodeRegistries) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(1).Invoke(*cap, "increment")).ok());
  ASSERT_TRUE(system_.Await(system_.node(2).Invoke(*cap, "increment")).ok());

  uint64_t per_node = 0;
  for (size_t n = 0; n < system_.node_count(); n++) {
    per_node += system_.node(n).metrics().CounterValue("kernel.invoke.started");
  }
  MetricsRegistry rollup = system_.Rollup();
  EXPECT_EQ(rollup.CounterValue("kernel.invoke.started"), per_node);
  EXPECT_EQ(per_node, 2u);
  // Remote invocations also show up in the latency histogram and on the LAN.
  const Histogram* remote = rollup.FindHistogram("kernel.invoke.latency.remote");
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->count(), 2u);
  EXPECT_GT(remote->Percentile(0.5), 0);
  EXPECT_GT(rollup.CounterValue("lan.frames_delivered"), 0u);
}

TEST_F(MetricsSystemTest, KernelStatsCompatibilityAccessor) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(0).Invoke(*cap, "increment")).ok());
  ASSERT_TRUE(system_.Await(system_.node(1).Invoke(*cap, "read")).ok());

  const MetricsRegistry& m0 = system_.node(0).metrics();
  KernelStats stats = system_.node(0).stats();
  EXPECT_EQ(stats.invocations_started, m0.CounterValue("kernel.invoke.started"));
  EXPECT_EQ(stats.invocations_local, m0.CounterValue("kernel.invoke.local"));
  EXPECT_EQ(stats.invocations_completed,
            m0.CounterValue("kernel.invoke.completed"));
  EXPECT_EQ(stats.dispatches, m0.CounterValue("kernel.dispatches"));
  EXPECT_EQ(stats.invocations_local, 1u);
  EXPECT_GE(stats.dispatches, 2u);  // served both the local and remote call
}

TEST_F(MetricsSystemTest, LocateMetricsAreBackendTagged) {
  // Default backend is the partitioned directory: locate rounds land on the
  // directory-tagged counter and the broadcast counter stays untouched.
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(1).Invoke(*cap, "increment")).ok());

  const MetricsRegistry& m1 = system_.node(1).metrics();
  EXPECT_EQ(m1.CounterValue("kernel.locate.queries.directory"), 1u);
  EXPECT_EQ(m1.CounterValue("kernel.locate.queries.broadcast"), 0u);

  // The stats() view sums both backends into locate_queries and keeps
  // locate_broadcasts as the broadcast-only slice.
  KernelStats stats = system_.node(1).stats();
  EXPECT_EQ(stats.locate_queries, 1u);
  EXPECT_EQ(stats.locate_broadcasts, 0u);

  // Creation published a residence to the name's home partition somewhere,
  // and the home's entry count gauge reflects it.
  MetricsRegistry rollup = system_.Rollup();
  EXPECT_GE(rollup.CounterValue("kernel.directory.updates"), 1u);
  ASSERT_NE(rollup.FindGauge("kernel.directory.entries"), nullptr);
  EXPECT_GE(rollup.FindGauge("kernel.directory.entries")->value(), 1);
}

TEST_F(MetricsSystemTest, RegistryJsonRoundTrips) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(1).Invoke(*cap, "increment")).ok());

  MetricsRegistry rollup = system_.Rollup();
  JsonValue root = ParseJsonOrDie(rollup.ToJson());
  ASSERT_EQ(root.kind, JsonValue::kObject);

  const JsonValue& counters = root.at("counters");
  ASSERT_EQ(counters.kind, JsonValue::kObject);
  EXPECT_EQ(static_cast<uint64_t>(counters.at("kernel.invoke.started").number),
            rollup.CounterValue("kernel.invoke.started"));

  const JsonValue& histograms = root.at("histograms");
  ASSERT_EQ(histograms.kind, JsonValue::kObject);
  const JsonValue& remote = histograms.at("kernel.invoke.latency.remote");
  ASSERT_EQ(remote.kind, JsonValue::kObject);
  const Histogram* h = rollup.FindHistogram("kernel.invoke.latency.remote");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(remote.at("count").number), h->count());
  EXPECT_NEAR(remote.at("p50_us").number,
              static_cast<double>(h->Percentile(0.5)) / 1000.0, 1e-6);
  EXPECT_NEAR(remote.at("p99_us").number,
              static_cast<double>(h->Percentile(0.99)) / 1000.0, 1e-6);
  EXPECT_GT(remote.at("p50_us").number, 0.0);
}

TEST_F(MetricsSystemTest, ChromeTraceRoundTrips) {
  TraceBuffer trace;
  system_.node(0).set_trace(&trace);
  system_.node(1).set_trace(&trace);

  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system_.Await(system_.node(1).Invoke(*cap, "increment")).ok());

  JsonValue root = ParseJsonOrDie(trace.ExportChromeTrace());
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);
  ASSERT_FALSE(events.items.empty());

  // The invoke start/complete pair must have folded into one "X" duration
  // event whose duration matches the buffer's own latency accounting.
  size_t durations = 0;
  for (const JsonValue& event : events.items) {
    const std::string& phase = event.at("ph").text;
    ASSERT_FALSE(phase.empty());
    if (phase == "X") {
      durations++;
      EXPECT_GT(event.at("dur").number, 0.0);
      EXPECT_NEAR(event.at("dur").number,
                  static_cast<double>(trace.MeanInvocationLatency()) / 1000.0,
                  1e-6);
    } else {
      EXPECT_EQ(phase, "i");
    }
    EXPECT_FALSE(event.at("name").text.empty());
  }
  EXPECT_EQ(durations, 1u);
}

// --- InvokeOptions ---------------------------------------------------------

TEST_F(MetricsSystemTest, InvokeOptionsTimeoutStillFires) {
  Capability bogus(ObjectName(99, 4242, 1), Rights::All());
  InvokeOptions options = InvokeOptions::WithTimeout(Milliseconds(5));
  InvokeResult result =
      system_.Await(system_.node(0).Invoke(bogus, "read", {}, options));
  EXPECT_FALSE(result.ok());
  // The error reply still counts as a completion; the failure is also
  // attributed to timeout or to the locate protocol giving up.
  const MetricsRegistry& m0 = system_.node(0).metrics();
  EXPECT_EQ(m0.CounterValue("kernel.invoke.completed"), 1u);
  EXPECT_GE(m0.CounterValue("kernel.invoke.timed_out") +
                m0.CounterValue("kernel.invoke.unavailable"),
            1u);
}

TEST_F(MetricsSystemTest, MetricsClassRecordsPerClassHistogram) {
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  InvokeOptions options;
  options.metrics_class = "bump";
  ASSERT_TRUE(
      system_.Await(system_.node(1).Invoke(*cap, "increment", {}, options)).ok());
  ASSERT_TRUE(system_.Await(system_.node(1).Invoke(*cap, "read")).ok());

  const MetricsRegistry& m1 = system_.node(1).metrics();
  const Histogram* classed =
      m1.FindHistogram("kernel.invoke.latency.class.bump");
  ASSERT_NE(classed, nullptr);
  EXPECT_EQ(classed->count(), 1u);  // only the classed invocation
  ASSERT_NE(m1.FindHistogram("kernel.invoke.latency.remote"), nullptr);
  EXPECT_EQ(m1.FindHistogram("kernel.invoke.latency.remote")->count(), 2u);
}

TEST_F(MetricsSystemTest, TraceLabelAppearsInTrace) {
  TraceBuffer trace;
  system_.node(1).set_trace(&trace);
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  InvokeOptions options;
  options.trace_label = "probe-7";
  ASSERT_TRUE(
      system_.Await(system_.node(1).Invoke(*cap, "increment", {}, options)).ok());

  bool found = false;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEventKind::kInvokeStart &&
        event.detail.find("probe-7") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- Fluent topology builder -----------------------------------------------

TEST(NodeBuilder, BuildsOnDestructionWithSystemDefaults) {
  EdenSystem system;
  RegisterStandardTypes(system);
  system.AddNode("alpha");
  system.AddNode("beta");
  EXPECT_EQ(system.node_count(), 2u);
  EXPECT_EQ(system.node(0).config().default_invoke_timeout,
            system.config().kernel.default_invoke_timeout);
}

TEST(NodeBuilder, OverridesApplyToOneNodeOnly) {
  EdenSystem system;
  RegisterStandardTypes(system);
  KernelConfig patient;
  patient.default_invoke_timeout = Seconds(90);
  NodeKernel& special = system.AddNode("special").WithKernel(patient);
  system.AddNode("normal");

  EXPECT_EQ(special.config().default_invoke_timeout, Seconds(90));
  EXPECT_EQ(system.node(1).config().default_invoke_timeout,
            system.config().kernel.default_invoke_timeout);
  EXPECT_EQ(&system.node(0), &special);
}

TEST(NodeBuilder, WithLocationSelectsTheBackend) {
  EdenSystem system;
  RegisterStandardTypes(system);
  NodeKernel& classic = system.AddNode("classic").WithLocation(
      LocationBackend::kBroadcast);
  system.AddNode("modern");
  EXPECT_EQ(classic.config().locate.backend, LocationBackend::kBroadcast);
  EXPECT_EQ(system.node(1).config().locate.backend,
            LocationBackend::kDirectory);

  // A broadcast-configured node resolves a remote name via the broadcast
  // counter; its directory counter never moves.
  auto cap = system.node(1).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system.Await(classic.Invoke(*cap, "increment")).ok());
  EXPECT_EQ(classic.metrics().CounterValue("kernel.locate.queries.broadcast"),
            1u);
  EXPECT_EQ(classic.metrics().CounterValue("kernel.locate.queries.directory"),
            0u);

  LocateConfig tuned;
  tuned.backend = LocationBackend::kDirectory;
  tuned.directory_fanout = 2;
  NodeKernel& wide = system.AddNode("wide").WithLocation(tuned);
  EXPECT_EQ(wide.config().locate.directory_fanout, 2);
}

TEST(NodeBuilder, WithTraceWiresTheBuffer) {
  EdenSystem system;
  RegisterStandardTypes(system);
  TraceBuffer trace;
  system.AddNode("traced").WithTrace(&trace);
  auto cap = system.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system.Await(system.node(0).Invoke(*cap, "increment")).ok());
  EXPECT_GT(trace.total_recorded(), 0u);
}

}  // namespace
}  // namespace eden
