// Unit tests for the discrete-event simulation core: clock, event queue,
// cancellation, RNG determinism, and the coroutine task/future layer.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace eden {
namespace {

TEST(SimulationTest, EventsRunInTimestampOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(Milliseconds(30), [&] { order.push_back(3); });
  sim.Schedule(Milliseconds(10), [&] { order.push_back(1); });
  sim.Schedule(Milliseconds(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Milliseconds(30));
}

TEST(SimulationTest, SameTimestampIsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    sim.Schedule(Milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventId id = sim.Schedule(Milliseconds(5), [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulationTest, CancelAfterFireIsHarmless) {
  Simulation sim;
  EventId id = sim.Schedule(0, [] {});
  sim.Run();
  sim.Cancel(id);  // no crash, no effect
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulationTest, RunUntilAdvancesClockToDeadline) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(Milliseconds(10), [&] { fired++; });
  sim.Schedule(Milliseconds(100), [&] { fired++; });
  sim.RunUntil(Milliseconds(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Milliseconds(50));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      sim.Schedule(Milliseconds(1), recurse);
    }
  };
  sim.Schedule(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), Milliseconds(9));
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DoubleIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; i++) {
    double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyTheRequestedMean) {
  Rng rng(99);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; i++) {
    sum += rng.NextExponential(5.0);
  }
  double mean = sum / kSamples;
  EXPECT_NEAR(mean, 5.0, 0.2);
}

TEST(RngTest, NextInRangeIsInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; i++) {
    int64_t value = rng.NextInRange(2, 4);
    EXPECT_GE(value, 2);
    EXPECT_LE(value, 4);
    saw_lo |= (value == 2);
    saw_hi |= (value == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(FutureTest, ReadyValuePropagates) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  EXPECT_FALSE(future.ready());
  promise.Set(42);
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.Get(), 42);
}

TEST(FutureTest, CallbacksFireOnSetAndImmediatelyWhenLate) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  int calls = 0;
  future.OnReady([&] { calls++; });
  promise.Set(1);
  EXPECT_EQ(calls, 1);
  future.OnReady([&] { calls++; });  // already set: fires immediately
  EXPECT_EQ(calls, 2);
}

TEST(TaskTest, CoroutineAwaitsFutureAndResumes) {
  Simulation sim;
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  int observed = -1;

  auto coro = [&](Future<int> f) -> Task<void> {
    observed = co_await f;
  };
  Spawn(coro(future));
  EXPECT_EQ(observed, -1);  // suspended
  promise.Set(7);
  EXPECT_EQ(observed, 7);
}

TEST(TaskTest, SleepForAdvancesVirtualTime) {
  Simulation sim;
  SimTime woke_at = -1;
  auto coro = [&]() -> Task<void> {
    co_await SleepFor(sim, Milliseconds(25));
    woke_at = sim.now();
  };
  Spawn(coro());
  sim.Run();
  EXPECT_EQ(woke_at, Milliseconds(25));
}

TEST(TaskTest, NestedTasksChainResults) {
  Simulation sim;
  auto inner = [&]() -> Task<int> {
    co_await SleepFor(sim, Milliseconds(1));
    co_return 10;
  };
  auto outer = [&]() -> Task<int> {
    int a = co_await inner();
    int b = co_await inner();
    co_return a + b;
  };
  Future<int> result = Launch(outer());
  sim.Run();
  ASSERT_TRUE(result.ready());
  EXPECT_EQ(result.Get(), 20);
  EXPECT_EQ(sim.now(), Milliseconds(2));
}

TEST(TaskTest, MultipleWaitersAllResume) {
  Simulation sim;
  Promise<Unit> promise;
  Future<Unit> future = promise.GetFuture();
  int resumed = 0;
  auto waiter = [&](Future<Unit> f) -> Task<void> {
    co_await f;
    resumed++;
  };
  for (int i = 0; i < 5; i++) {
    Spawn(waiter(future));
  }
  EXPECT_EQ(resumed, 0);
  promise.Set(Unit{});
  EXPECT_EQ(resumed, 5);
}

TEST(TaskTest, LaunchExposesTaskResultAsFuture) {
  Simulation sim;
  auto work = [&]() -> Task<std::string> {
    co_await SleepFor(sim, Microseconds(10));
    co_return "done";
  };
  Future<std::string> future = Launch(work());
  EXPECT_FALSE(future.ready());
  sim.Run();
  ASSERT_TRUE(future.ready());
  EXPECT_EQ(future.Get(), "done");
}

TEST(BytesTest, WriterReaderRoundTripAllTypes) {
  BufferWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU16(0x1234);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefULL);
  writer.WriteI64(-42);
  writer.WriteVarint(300);
  writer.WriteString("hello");
  writer.WriteBool(true);
  writer.WriteDouble(3.25);
  Bytes buffer = writer.Take();

  BufferReader reader(buffer);
  EXPECT_EQ(reader.ReadU8().value(), 0xab);
  EXPECT_EQ(reader.ReadU16().value(), 0x1234);
  EXPECT_EQ(reader.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.ReadI64().value(), -42);
  EXPECT_EQ(reader.ReadVarint().value(), 300u);
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_EQ(reader.ReadBool().value(), true);
  EXPECT_EQ(reader.ReadDouble().value(), 3.25);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, TruncatedReadsFailCleanly) {
  BufferWriter writer;
  writer.WriteU64(1);
  Bytes buffer = writer.Take();
  buffer.resize(3);
  BufferReader reader(buffer);
  EXPECT_FALSE(reader.ReadU64().ok());
}

TEST(BytesTest, VarintBoundaries) {
  for (uint64_t value : {0ull, 127ull, 128ull, 16383ull, 16384ull,
                         0xffffffffffffffffull}) {
    BufferWriter writer;
    writer.WriteVarint(value);
    BufferReader reader(writer.buffer());
    EXPECT_EQ(reader.ReadVarint().value(), value);
  }
}

TEST(BytesTest, MalformedVarintRejected) {
  Bytes evil(11, 0x80);  // continuation bits forever
  BufferReader reader(evil);
  EXPECT_FALSE(reader.ReadVarint().ok());
}

TEST(StatusTest, MacrosPropagateErrors) {
  auto inner = []() -> StatusOr<int> { return NotFoundError("nope"); };
  auto outer = [&]() -> StatusOr<int> {
    EDEN_ASSIGN_OR_RETURN(int value, inner());
    return value + 1;
  };
  auto result = outer();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(OkStatus().ToString(), "OK");
  EXPECT_EQ(TimeoutError("too slow").ToString(), "TIMEOUT: too slow");
}

}  // namespace
}  // namespace eden
