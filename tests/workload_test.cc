// Tests for the workload drivers and latency recorder.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"
#include "src/workload/workload.h"

namespace eden {
namespace {

TEST(LatencyRecorderTest, BasicStatistics) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.mean(), 0);
  recorder.Record(Microseconds(100));
  recorder.Record(Microseconds(300));
  EXPECT_EQ(recorder.count(), 2u);
  EXPECT_EQ(recorder.mean(), Microseconds(200));
  EXPECT_EQ(recorder.min(), Microseconds(100));
  EXPECT_EQ(recorder.max(), Microseconds(300));
}

TEST(LatencyRecorderTest, PercentileIsMonotoneAndBounded) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 1000; i++) {
    recorder.Record(Microseconds(i));
  }
  SimDuration p50 = recorder.Percentile(0.5);
  SimDuration p99 = recorder.Percentile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p50, Microseconds(256));   // true median 500 us, bucket bounds
  EXPECT_LE(p50, Microseconds(1024));
  EXPECT_LE(p99, recorder.max() * 2);
}

TEST(LatencyRecorderTest, HistogramListsOccupiedBucketsOnly) {
  LatencyRecorder recorder;
  recorder.Record(Microseconds(3));
  recorder.Record(Milliseconds(3));
  std::string histogram = recorder.Histogram();
  EXPECT_NE(histogram.find("2 us"), std::string::npos);
  EXPECT_EQ(histogram.find("[     8 us"), std::string::npos);
}

class WorkloadFixture : public ::testing::Test {
 protected:
  WorkloadFixture() {
    RegisterStandardTypes(system_);
    system_.AddNodes(4);
    counter_ = *system_.node(0).CreateObject("std.counter", Representation{});
  }

  WorkFactory IncrementFactory() {
    Capability counter = counter_;
    return [counter](size_t, uint64_t) {
      return WorkItem{counter, "increment", InvokeArgs{}.AddU64(1)};
    };
  }

  EdenSystem system_;
  Capability counter_;
};

TEST_F(WorkloadFixture, ClosedLoopCompletesAndCountsExactly) {
  WorkloadStats stats = RunClosedLoop(system_, {1, 2, 3}, IncrementFactory(),
                                      Milliseconds(500), Milliseconds(5));
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.latency.count(), stats.completed);
  // The counter saw exactly the completed increments (exactly-once check
  // through the workload layer).
  InvokeResult read = system_.Await(system_.node(0).Invoke(counter_, "read"));
  EXPECT_EQ(read.results.U64At(0).value(), stats.completed);
}

TEST_F(WorkloadFixture, ClosedLoopThroughputScalesWithClients) {
  WorkloadStats one = RunClosedLoop(system_, {1}, IncrementFactory(),
                                    Milliseconds(500));
  WorkloadStats four = RunClosedLoop(system_, {1, 2, 3, 1}, IncrementFactory(),
                                     Milliseconds(500));
  EXPECT_GT(four.completed, one.completed);
}

TEST_F(WorkloadFixture, OpenLoopIssuesAtTheRequestedRate) {
  WorkloadStats stats = RunOpenLoop(system_, {1, 2}, IncrementFactory(),
                                    /*rate_per_sec=*/200.0, Seconds(1));
  // Poisson with mean 200: expect within a generous band.
  EXPECT_GT(stats.completed + stats.failed, 120u);
  EXPECT_LT(stats.completed + stats.failed, 300u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(WorkloadFixture, AvailabilityReflectsFailures) {
  // Target a bogus capability: everything fails, availability is 0.
  Capability bogus(ObjectName(77, 1, 1), Rights::All());
  WorkFactory factory = [bogus](size_t, uint64_t) {
    return WorkItem{bogus, "read", InvokeArgs{}};
  };
  WorkloadStats stats = RunClosedLoop(system_, {1}, factory, Milliseconds(800),
                                      0, Milliseconds(100));
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_GT(stats.failed, 0u);
  EXPECT_EQ(stats.AvailabilityPercent(), 0.0);
}

TEST_F(WorkloadFixture, RunsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    SystemConfig config;
    config.seed = seed;
    EdenSystem system(config);
    RegisterStandardTypes(system);
    system.AddNodes(3);
    Capability counter =
        *system.node(0).CreateObject("std.counter", Representation{});
    WorkFactory factory = [counter](size_t, uint64_t) {
      return WorkItem{counter, "increment", InvokeArgs{}.AddU64(1)};
    };
    WorkloadStats stats =
        RunClosedLoop(system, {1, 2}, factory, Milliseconds(400), Milliseconds(3));
    return std::make_tuple(stats.completed, stats.latency.mean(),
                           static_cast<SimTime>(system.sim().now()));
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(std::get<2>(run(5)), std::get<2>(run(6)));
}

}  // namespace
}  // namespace eden
