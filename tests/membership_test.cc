// Elastic membership (DESIGN.md §16): live join/leave/drain, the background
// rebalancer, directory partition handoff, and rolling restarts with zero
// lost or duplicated invocations. The RollingRestart cases are the
// acceptance scenario for ROADMAP item 5: every node of a 16-node
// installation is drained, restarted and refilled under continuous
// closed-loop traffic, and the run must lose nothing, duplicate nothing, and
// reproduce bit-identically under the same seed.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "src/fault/fault.h"
#include "src/kernel/eden_system.h"
#include "src/kernel/location.h"
#include "src/kernel/message.h"
#include "src/kernel/placement.h"
#include "src/workload/workload.h"
#include "tests/test_util.h"

namespace eden {
namespace {

InvokeResult Call(EdenSystem& system, NodeKernel& from, const Capability& cap,
                  const std::string& op, InvokeArgs args = {}) {
  return system.Await(from.Invoke(cap, op, std::move(args)));
}

uint64_t CounterValue(EdenSystem& system, NodeKernel& from,
                      const Capability& cap) {
  InvokeResult result = Call(system, from, cap, "read");
  EXPECT_TRUE(result.ok()) << result.status;
  return result.results.U64At(0).value_or(0);
}

uint64_t SumCounter(EdenSystem& system, const std::string& name) {
  uint64_t total = 0;
  for (size_t i = 0; i < system.node_count(); i++) {
    total += system.node(i).metrics().counter(name).value();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Lifecycle basics
// ---------------------------------------------------------------------------

TEST(Membership, LifecycleTransitionsAndMemberSet) {
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(4);
  EXPECT_EQ(system.members().size(), 4u);
  for (size_t i = 0; i < 4; i++) {
    EXPECT_EQ(system.lifecycle(i), NodeLifecycle::kActive);
  }
  uint64_t epoch_before = system.membership_epoch();

  // Give the drainer something to evacuate so the drain is observable.
  ASSERT_TRUE(system.node(3).CreateObject("counter", CounterRep()).ok());

  Future<Status> left = system.LeaveNode(3);
  EXPECT_EQ(system.lifecycle(3), NodeLifecycle::kDraining);
  EXPECT_EQ(system.members().size(), 3u);  // drainer leaves immediately
  EXPECT_GT(system.membership_epoch(), epoch_before);
  Status status = system.Await(left);
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(system.lifecycle(3), NodeLifecycle::kDeparted);
  EXPECT_TRUE(system.node(3).failed());

  // Double-leave is refused.
  Status again = system.Await(system.LeaveNode(3));
  EXPECT_FALSE(again.ok());

  // Departed nodes can rejoin; they warm up as joining first.
  ASSERT_TRUE(system.RejoinNode(3).ok());
  EXPECT_EQ(system.lifecycle(3), NodeLifecycle::kJoining);
  EXPECT_EQ(system.members().size(), 4u);  // joining nodes are members
  system.RunFor(system.config().membership.join_warmup + Milliseconds(1));
  EXPECT_EQ(system.lifecycle(3), NodeLifecycle::kActive);
}

TEST(Membership, JoinNodeWarmsUpIntoTheMemberSet) {
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(3);

  NodeKernel& late = system.JoinNode("latecomer");
  size_t index = system.node_count() - 1;
  EXPECT_EQ(system.lifecycle(index), NodeLifecycle::kJoining);
  EXPECT_EQ(system.members().size(), 4u);
  EXPECT_FALSE(late.failed());
  system.RunFor(system.config().membership.join_warmup + Milliseconds(1));
  EXPECT_EQ(system.lifecycle(index), NodeLifecycle::kActive);

  // The newcomer serves traffic like any other node.
  auto cap = system.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  EXPECT_TRUE(Call(system, late, *cap, "increment").ok());
}

// ---------------------------------------------------------------------------
// Drain correctness
// ---------------------------------------------------------------------------

TEST(Membership, DrainMovesObjectsOffAndKeepsThemInvokable) {
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(4);

  std::vector<Capability> caps;
  for (int k = 0; k < 8; k++) {
    auto cap = system.node(1).CreateObject("counter", CounterRep());
    ASSERT_TRUE(cap.ok());
    caps.push_back(*cap);
    EXPECT_TRUE(
        Call(system, system.node(0), *cap, "increment", InvokeArgs{}.AddU64(k + 1))
            .ok());
  }
  // Half of them also have durable chains on the drainer's store.
  for (int k = 0; k < 4; k++) {
    EXPECT_TRUE(Call(system, system.node(0), caps[k], "checkpoint").ok());
  }
  ASSERT_EQ(system.node(1).active_count(), 8u);
  ASSERT_EQ(system.node(1).CheckpointInventory().size(), 4u);

  Status status = system.Await(system.LeaveNode(1));
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(system.lifecycle(1), NodeLifecycle::kDeparted);

  // Every object survived the evacuation with its state, and nothing refers
  // to the departed store any more.
  for (int k = 0; k < 8; k++) {
    EXPECT_EQ(CounterValue(system, system.node(0), caps[k]),
              static_cast<uint64_t>(k + 1));
  }
  for (size_t i = 0; i < system.node_count(); i++) {
    if (i == 1) {
      continue;
    }
    for (const ObjectName& name : system.node(i).ActiveObjects()) {
      auto object = system.node(i).FindActive(name);
      ASSERT_NE(object, nullptr);
      EXPECT_NE(object->policy.primary_site, system.node(1).station())
          << "checkpoint chain still anchored at the departed store";
    }
  }
  EXPECT_GT(SumCounter(system, "kernel.moves_in"), 0u);
}

TEST(Membership, HardLeaveFallsBackToCheckpointedState) {
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(3);

  // Long-term state deliberately lives on node0, not on the node we yank.
  CreateOptions options;
  options.policy = CheckpointPolicy{system.node(0).station(),
                                    ReliabilityLevel::kLocal, 0};
  auto cap = system.node(1).CreateObject("counter", CounterRep(), options);
  ASSERT_TRUE(cap.ok());
  EXPECT_TRUE(Call(system, system.node(2), *cap, "increment",
                   InvokeArgs{}.AddU64(7))
                  .ok());
  EXPECT_TRUE(Call(system, system.node(2), *cap, "checkpoint").ok());
  // This tail increment is volatile-only; a hard departure may lose it.
  EXPECT_TRUE(Call(system, system.node(2), *cap, "increment").ok());

  Status status = system.Await(system.LeaveNode(1, /*drain=*/false));
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_TRUE(system.node(1).failed());

  // The object reincarnates from its checkpoint: acked durable state
  // survives, the unsynced tail rolls back (same contract as a crash).
  EXPECT_EQ(CounterValue(system, system.node(2), *cap), 7u);
}

TEST(Membership, GracefulRestartPreservesLocalCheckpoints) {
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(3);

  auto cap = system.node(1).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  EXPECT_TRUE(Call(system, system.node(0), *cap, "increment",
                   InvokeArgs{}.AddU64(3))
                  .ok());
  EXPECT_TRUE(Call(system, system.node(0), *cap, "checkpoint").ok());

  Status status = system.Await(system.GracefulRestart(1, Milliseconds(50)));
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(system.lifecycle(1), NodeLifecycle::kJoining);
  system.RunFor(system.config().membership.join_warmup + Milliseconds(1));
  EXPECT_EQ(system.lifecycle(1), NodeLifecycle::kActive);
  EXPECT_FALSE(system.node(1).failed());

  // The drain moved the object off (it was active), so the value is intact —
  // including the unsynced tail, because nothing ever crashed while hosting.
  EXPECT_EQ(CounterValue(system, system.node(0), *cap), 3u);
  // The restart scan found the (now stale) chain still on node1's store and
  // its epoch-0 re-publish did NOT displace the live residence: the object
  // still answers with the live state from its new host.
  EXPECT_TRUE(system.node(1).HasCheckpoint(cap->name()));
}

// ---------------------------------------------------------------------------
// Directory handoff (satellite: fanout auto-flip + zero-fallback lookups)
// ---------------------------------------------------------------------------

TEST(Membership, DrainHandsOffDirectoryPartitionsWithoutFallbacks) {
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(8);

  std::vector<Capability> caps;
  for (int k = 0; k < 20; k++) {
    auto cap = system.node(0).CreateObject("counter", CounterRep());
    ASSERT_TRUE(cap.ok());
    caps.push_back(*cap);
  }
  system.RunFor(Milliseconds(10));  // let the creation publishes land

  size_t drained_entries = system.node(3).location().directory_entries();
  Status status = system.Await(system.LeaveNode(3));
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(system.node(3).location().directory_entries(), 0u);
  if (drained_entries > 0) {
    EXPECT_GT(SumCounter(system, "kernel.directory.handoffs"), 0u);
  }
  system.RunFor(Milliseconds(10));  // handoff pushes in flight

  // Cold-cache lookups for every object must all hit the directory: the
  // records that were homed on the drained node were handed off, not lost.
  uint64_t fallbacks_before = SumCounter(system, "kernel.directory.fallbacks");
  for (const Capability& cap : caps) {
    EXPECT_TRUE(Call(system, system.node(5), cap, "increment").ok());
  }
  EXPECT_EQ(SumCounter(system, "kernel.directory.fallbacks"), fallbacks_before);
}

TEST(Membership, AutoFanoutSurvivesHomeCrashDuringDrain) {
  // At >= 16 members the directory fanout default flips to 2: every
  // residence is recorded at two homes, so one home crashing mid-drain costs
  // nothing. 17 nodes so the member count stays at the threshold after the
  // drain and the redundancy holds through the membership change.
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(17);

  auto cap = system.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  system.RunFor(Milliseconds(10));

  std::vector<StationId> homes = system.node(0).location().HomesOf(cap->name());
  ASSERT_EQ(homes.size(), 2u) << ">= 16 members should auto-flip fanout to 2";

  // Drain some non-home bystander; while it drains, crash one of the homes.
  size_t drain_index = 0;
  for (size_t i = 1; i < system.node_count(); i++) {
    StationId st = system.node(i).station();
    if (st != homes[0] && st != homes[1] && st != system.node(0).station()) {
      drain_index = i;
      break;
    }
  }
  ASSERT_NE(drain_index, 0u);
  Future<Status> left = system.LeaveNode(drain_index);
  NodeKernel* dead_home = system.NodeAt(homes[0]);
  ASSERT_NE(dead_home, nullptr);
  dead_home->FailNode();

  Status status = system.Await(left);
  EXPECT_TRUE(status.ok()) << status;
  // Let the membership-change handoffs finish: the crashed home's sends died
  // with it, and the surviving home's first frame may have collided with
  // them, so cover at least one transport retransmit interval.
  system.RunFor(Milliseconds(50));

  std::vector<StationId> homes_after =
      system.node(0).location().HomesOf(cap->name());
  EXPECT_EQ(homes_after.size(), 2u) << "fanout must stay 2 after the drain";

  // A cold-cache client resolves via a surviving home: no fallback
  // broadcast anywhere.
  uint64_t fallbacks_before = SumCounter(system, "kernel.directory.fallbacks");
  NodeKernel* client = nullptr;
  for (size_t i = 1; i < system.node_count(); i++) {
    StationId st = system.node(i).station();
    if (i != drain_index && st != homes[0] && st != homes[1] &&
        st != system.node(0).station()) {
      client = &system.node(i);
      break;
    }
  }
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(Call(system, *client, *cap, "increment").ok());
  EXPECT_EQ(SumCounter(system, "kernel.directory.fallbacks"), fallbacks_before);
}

// ---------------------------------------------------------------------------
// Placement policies
// ---------------------------------------------------------------------------

TEST(Membership, ConsistentHashMovesFarFewerHomesOnChurn) {
  std::vector<Member> members;
  for (size_t i = 0; i < 16; i++) {
    members.push_back(Member{i, static_cast<StationId>(100 + i)});
  }
  std::vector<Member> without_one = members;
  without_one.erase(without_one.begin() + 7);

  auto churn = [&](PlacementPolicyKind kind) {
    auto placement = Placement::Create(kind);
    int changed = 0;
    for (int k = 0; k < 400; k++) {
      ObjectName name(static_cast<uint32_t>(k % 16),
                      static_cast<uint64_t>(k) * 1315423911ull + 7,
                      static_cast<uint32_t>(k));
      placement->OnMembershipChange(members);
      auto before = placement->HomesOf(name, members, 1);
      placement->OnMembershipChange(without_one);
      auto after = placement->HomesOf(name, without_one, 1);
      if (before != after) {
        changed++;
      }
    }
    return changed;
  };

  int modulo_changed = churn(PlacementPolicyKind::kModulo);
  int ring_changed = churn(PlacementPolicyKind::kConsistentHash);
  // Removing 1 of 16 members reshuffles nearly everything under modulo but
  // only ~1/16th of the names under the ring.
  EXPECT_GT(modulo_changed, 300);
  EXPECT_LT(ring_changed, 100);
  EXPECT_LT(ring_changed * 3, modulo_changed);
}

TEST(Membership, SpreadPassRefillsALeanNode) {
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(3);

  for (int k = 0; k < 9; k++) {
    ASSERT_TRUE(system.node(0).CreateObject("counter", CounterRep()).ok());
  }
  ASSERT_EQ(system.node(0).active_count(), 9u);

  system.rebalancer().set_spread_gap(1);
  system.rebalancer().EnsureRunning();
  system.RunFor(Seconds(2));

  size_t max_count = 0, min_count = SIZE_MAX;
  for (size_t i = 0; i < 3; i++) {
    max_count = std::max(max_count, system.node(i).active_count());
    min_count = std::min(min_count, system.node(i).active_count());
  }
  EXPECT_LE(max_count - min_count, 2u)
      << "spread pass should level 9 objects across 3 nodes";
}

// ---------------------------------------------------------------------------
// At-most-once across moves (reply cache travels with the object)
// ---------------------------------------------------------------------------

TEST(Membership, ReplyCacheTravelsWithMove) {
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(3);

  auto cap = system.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());

  // A hand-rolled request with a fixed invocation id, delivered straight to
  // the object's host — standing in for a client whose ack got lost and who
  // will retry the identical message later.
  InvokeRequestMsg request;
  request.invocation_id = (999ull << 40) | 1;
  request.reply_to = system.node(2).station();
  request.target = *cap;
  request.operation = "increment";
  request.args = InvokeArgs{}.AddU64(5);
  Bytes wire = request.Encode();

  system.node(2).transport().SendReliable(system.node(0).station(),
                                          Bytes(wire));
  system.RunFor(Milliseconds(20));
  EXPECT_EQ(CounterValue(system, system.node(1), *cap), 5u);

  // The object moves; the at-most-once cache entries ride the transfer.
  auto object = system.node(0).FindActive(cap->name());
  ASSERT_NE(object, nullptr);
  Status moved = system.Await(
      system.node(0).MoveObject(object, system.node(1).station()));
  ASSERT_TRUE(moved.ok()) << moved;

  // The "retry" lands at the NEW home: it must be re-answered from the
  // carried cache, not re-executed.
  uint64_t dups_before =
      system.node(1).metrics().counter("kernel.duplicate_requests").value();
  system.node(2).transport().SendReliable(system.node(1).station(),
                                          Bytes(wire));
  system.RunFor(Milliseconds(20));
  EXPECT_EQ(CounterValue(system, system.node(2), *cap), 5u)
      << "retried increment was re-executed after the move";
  EXPECT_EQ(
      system.node(1).metrics().counter("kernel.duplicate_requests").value(),
      dups_before + 1);
}

TEST(Membership, MoveTransferCachedRepliesRoundTrip) {
  MoveTransferMsg msg;
  msg.transfer_id = 42;
  msg.source = 7;
  msg.name = ObjectName(1, 2, 3);
  msg.type_name = "counter";
  msg.cached_replies.push_back(
      {11, InvokeResult::Ok(InvokeArgs{}.AddU64(5)), false});
  msg.cached_replies.push_back({12, InvokeResult::Ok(), true});

  auto decoded = MoveTransferMsg::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->cached_replies.size(), 2u);
  EXPECT_EQ(decoded->cached_replies[0].invocation_id, 11u);
  EXPECT_EQ(decoded->cached_replies[0].result.results.U64At(0).value_or(0), 5u);
  EXPECT_FALSE(decoded->cached_replies[0].frozen);
  EXPECT_EQ(decoded->cached_replies[1].invocation_id, 12u);
  EXPECT_TRUE(decoded->cached_replies[1].frozen);
}

// ---------------------------------------------------------------------------
// Restart republish vs concurrent move (regression)
// ---------------------------------------------------------------------------

TEST(Membership, RestartRepublishDoesNotResurrectStaleResidence) {
  EdenSystem system;
  system.RegisterType(MakeCounterType());
  system.AddNodes(4);

  // Pick an object whose directory home is NOT the node we will crash: the
  // regression under test is the restart scan's passive re-publish losing
  // the merge against a surviving home's newer active record (a home that
  // crashes loses its partition legitimately — that is repair's job).
  std::optional<Capability> cap;
  for (int attempt = 0; attempt < 32 && !cap.has_value(); attempt++) {
    auto candidate = system.node(0).CreateObject("counter", CounterRep());
    ASSERT_TRUE(candidate.ok());
    std::vector<StationId> homes =
        system.node(0).location().HomesOf(candidate->name());
    ASSERT_FALSE(homes.empty());
    if (homes[0] != system.node(0).station()) {
      cap = *candidate;
    }
  }
  ASSERT_TRUE(cap.has_value()) << "no candidate homed off node0 in 32 tries";
  EXPECT_TRUE(Call(system, system.node(2), *cap, "increment",
                   InvokeArgs{}.AddU64(9))
                  .ok());
  EXPECT_TRUE(Call(system, system.node(2), *cap, "checkpoint").ok());

  // Move the live object away; the stale chain stays on node0's store.
  auto object = system.node(0).FindActive(cap->name());
  ASSERT_NE(object, nullptr);
  ASSERT_TRUE(system
                  .Await(system.node(0).MoveObject(object,
                                                   system.node(1).station()))
                  .ok());
  system.RunFor(Milliseconds(10));

  // Crash-restart node0: its checkpoint scan re-publishes the object as
  // passive-at-node0 with epoch 0, racing the directory's newer active
  // record. The epoch merge rule must keep the active residence.
  system.node(0).FailNode();
  system.node(0).RestartNode();
  system.RunFor(Milliseconds(20));

  std::vector<StationId> homes = system.node(1).location().HomesOf(cap->name());
  ASSERT_FALSE(homes.empty());
  for (StationId home : homes) {
    NodeKernel* node = system.NodeAt(home);
    ASSERT_NE(node, nullptr);
    if (const ResidenceRecord* record =
            node->location().DirectoryEntry(cap->name())) {
      EXPECT_TRUE(record->active);
      EXPECT_EQ(record->host, system.node(1).station())
          << "restart scan's passive re-publish clobbered the live record";
    }
  }
  EXPECT_EQ(CounterValue(system, system.node(2), *cap), 9u);
}

// ---------------------------------------------------------------------------
// Rolling restart (the ROADMAP item 5 acceptance scenario)
// ---------------------------------------------------------------------------

struct RollingResult {
  WorkloadStats stats;
  uint64_t object_total = 0;
  std::vector<uint64_t> digests;
  SimDuration p99 = 0;
};

// Drives `restarts` GracefulRestarts, one node at a time, under continuous
// elastic closed-loop increment traffic, then settles and audits.
RollingResult RunRollingRestart(uint64_t seed, size_t nodes, size_t restarts,
                                size_t clients, SimDuration window,
                                const FaultPlan* plan = nullptr) {
  SystemConfig config;
  config.seed = seed;
  config.membership.rebalance.spread_gap = 2;  // refill rejoined nodes
  EdenSystem system(config);
  system.RegisterType(MakeCounterType());
  system.AddNodes(nodes);
  if (plan != nullptr) {
    system.EnableFaults(*plan);
  }

  std::vector<Capability> caps;
  for (size_t i = 0; i < nodes; i++) {
    auto cap = system.node(i).CreateObject("counter", CounterRep());
    EXPECT_TRUE(cap.ok());
    caps.push_back(*cap);
  }
  system.RunFor(Milliseconds(10));

  Promise<Status> rolled;
  [](EdenSystem* system, size_t restarts, Promise<Status> done) -> DetachedTask {
    Status worst = OkStatus();
    for (size_t i = 0; i < restarts; i++) {
      Status status = co_await system->GracefulRestart(i, Milliseconds(40));
      if (!status.ok()) {
        worst = status;
      }
      // Let the rejoined node finish warming up before the next target
      // drains, like a real rolling deploy would.
      co_await SleepFor(system->sim(),
                        system->config().membership.join_warmup);
    }
    done.Set(worst);
  }(&system, restarts, rolled);

  WorkloadStats stats = RunClosedLoopElastic(
      system, clients,
      [&caps](size_t client, uint64_t seq) {
        WorkItem item;
        item.target = caps[(client + seq) % caps.size()];
        item.operation = "increment";
        item.args = InvokeArgs{}.AddU64(1);
        return item;
      },
      window, /*mean_think_time=*/Milliseconds(2));

  Status rolling = system.Await(rolled.GetFuture());
  EXPECT_TRUE(rolling.ok()) << rolling;
  system.RunFor(Milliseconds(500));  // settle in-flight rebalances

  RollingResult result;
  result.stats = stats;
  result.p99 = stats.latency.Percentile(0.99);
  for (const Capability& cap : caps) {
    result.object_total += CounterValue(system, system.node(0), cap);
  }
  for (size_t i = 0; i < system.node_count(); i++) {
    result.digests.push_back(system.node(i).digest().value());
  }
  return result;
}

TEST(RollingRestart, SixteenNodesZeroLostZeroDuplicated) {
  RollingResult result =
      RunRollingRestart(/*seed=*/1981, /*nodes=*/16, /*restarts=*/16,
                        /*clients=*/24, /*window=*/Seconds(6));
  EXPECT_GT(result.stats.completed, 1000u);
  EXPECT_EQ(result.stats.failed, 0u) << "lost invocations during the roll";
  // Counter conservation: every completed increment is reflected exactly
  // once — fewer means lost writes, more means duplicated execution.
  EXPECT_EQ(result.object_total, result.stats.completed);
  // The roll may bump tail latency, but it must stay bounded (every move
  // parks writers for at most a quiesce + transfer, and retries mask the
  // directory handoff window).
  EXPECT_LT(result.p99, Seconds(2));
}

TEST(RollingRestart, SameSeedIsBitIdentical) {
  RollingResult a =
      RunRollingRestart(/*seed=*/77, /*nodes=*/16, /*restarts=*/16,
                        /*clients=*/24, /*window=*/Seconds(4));
  RollingResult b =
      RunRollingRestart(/*seed=*/77, /*nodes=*/16, /*restarts=*/16,
                        /*clients=*/24, /*window=*/Seconds(4));
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.failed, b.stats.failed);
  EXPECT_EQ(a.object_total, b.object_total);
  ASSERT_EQ(a.digests.size(), b.digests.size());
  for (size_t i = 0; i < a.digests.size(); i++) {
    EXPECT_EQ(a.digests[i], b.digests[i]) << "node " << i;
  }
}

// The seeded chaos case ci.sh gates on: the same roll under wire corruption,
// duplication and delay. The reliable transport plus the traveling reply
// cache must still deliver exactly-once, bit-identically per seed.
TEST(RollingRestartChaos, WireFaultsLoseNothingAndReproduce) {
  FaultPlan plan;
  plan.wire.corrupt_probability = 0.01;
  plan.wire.duplicate_probability = 0.02;
  plan.wire.delay_probability = 0.05;
  plan.wire.max_extra_delay = Milliseconds(1);

  RollingResult a = RunRollingRestart(/*seed=*/1981, /*nodes=*/8,
                                      /*restarts=*/8, /*clients=*/12,
                                      /*window=*/Seconds(4), &plan);
  EXPECT_GT(a.stats.completed, 500u);
  EXPECT_EQ(a.stats.failed, 0u);
  EXPECT_EQ(a.object_total, a.stats.completed);

  RollingResult b = RunRollingRestart(/*seed=*/1981, /*nodes=*/8,
                                      /*restarts=*/8, /*clients=*/12,
                                      /*window=*/Seconds(4), &plan);
  EXPECT_EQ(a.object_total, b.object_total);
  ASSERT_EQ(a.digests.size(), b.digests.size());
  for (size_t i = 0; i < a.digests.size(); i++) {
    EXPECT_EQ(a.digests[i], b.digests[i]) << "node " << i;
  }
}

// ---------------------------------------------------------------------------
// Fail-fast guards (satellite: misuse dies loudly, even in release builds)
// ---------------------------------------------------------------------------

using MembershipDeathTest = ::testing::Test;

TEST(MembershipDeathTest, EnableFaultsOnShardedSystemDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SystemConfig config;
        config.shards = 2;
        EdenSystem system(config);
        system.EnableFaults(FaultPlan{});
      },
      "single-threaded");
}

TEST(MembershipDeathTest, WithShardsAfterFaultsDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        EdenSystem system;
        system.EnableFaults(FaultPlan{});
        system.WithShards(2);
      },
      "single-threaded");
}

TEST(MembershipDeathTest, RunOpenLoopOnShardedSystemDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SystemConfig config;
        config.shards = 2;
        EdenSystem system(config);
        system.RegisterType(MakeCounterType());
        system.AddNodes(2);
        RunOpenLoop(system, {0},
                    [](size_t, uint64_t) { return WorkItem{}; }, 100.0,
                    Milliseconds(10));
      },
      "single-threaded");
}

// ---------------------------------------------------------------------------
// Directory fanout hysteresis (DESIGN.md §17 satellite)
// ---------------------------------------------------------------------------

// A membership hovering around the 16-member auto-fanout boundary: 15 stable
// nodes, a flapper joining and leaving three times, with directory records in
// place so a fanout flip would re-fan every record's home set.
uint64_t RunFanoutFlap(SimDuration dwell, int pinned_fanout) {
  SystemConfig config;
  config.seed = 29;
  config.kernel.locate.fanout_dwell = dwell;
  config.kernel.locate.directory_fanout = pinned_fanout;
  EdenSystem system(config);
  system.RegisterType(MakeCounterType());
  system.AddNodes(15);
  for (int k = 0; k < 24; k++) {
    EXPECT_TRUE(
        system.node(k % 15).CreateObject("counter", CounterRep()).ok());
  }
  system.RunFor(Milliseconds(50));  // publishes land, directory populated
  for (int flap = 0; flap < 3; flap++) {
    system.JoinNode("flapper" + std::to_string(flap));  // members: 15 -> 16
    system.RunFor(Milliseconds(20));
    Status left = system.Await(
        system.LeaveNode(system.node_count() - 1));  // members: 16 -> 15
    EXPECT_TRUE(left.ok()) << left;
    system.RunFor(Milliseconds(20));
  }
  MetricsRegistry rollup = system.Rollup();
  const Counter* handoffs = rollup.FindCounter("kernel.directory.handoffs");
  return handoffs == nullptr ? 0 : handoffs->value();
}

TEST(Membership, FanoutDwellSuppressesHandoffWavesWhileHovering) {
  // Pinned fanout 1 is the no-fanout-wave baseline: every handoff it does is
  // membership re-homing, not re-fanning. A dwell longer than any excursion
  // must match it exactly, and the legacy instant flip must pay extra
  // cluster-wide waves on every 15 <-> 16 crossing.
  uint64_t pinned = RunFanoutFlap(/*dwell=*/0, /*pinned_fanout=*/1);
  uint64_t dwelled = RunFanoutFlap(Seconds(5), /*pinned_fanout=*/0);
  uint64_t instant = RunFanoutFlap(/*dwell=*/0, /*pinned_fanout=*/0);
  EXPECT_GT(pinned, 0u);  // the flapper does take (and hand back) partitions
  EXPECT_EQ(dwelled, pinned);
  EXPECT_GT(instant, dwelled);
}

TEST(MembershipDeathTest, MembershipOpOnShardedSystemDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SystemConfig config;
        config.shards = 2;
        EdenSystem system(config);
        system.AddNodes(4);
        system.LeaveNode(1);
      },
      "single-threaded");
}

}  // namespace
}  // namespace eden
