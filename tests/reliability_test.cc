// Tests for paper section 4.4: checkpoint, checksite, crash, reincarnation,
// and node failure/recovery.
#include <gtest/gtest.h>

#include "src/kernel/eden_system.h"
#include "tests/test_util.h"

namespace eden {
namespace {

class ReliabilityFixture : public ::testing::Test {
 protected:
  ReliabilityFixture() {
    system_.RegisterType(MakeCounterType());
    system_.AddNodes(4);
  }

  InvokeResult Call(NodeKernel& from, const Capability& cap, const std::string& op,
                    InvokeArgs args = {}) {
    return system_.Await(from.Invoke(cap, op, std::move(args)));
  }

  // Creates a counter on node 0, increments to `value`, checkpoints it.
  Capability MakeCheckpointedCounter(uint64_t value) {
    auto cap = system_.node(0).CreateObject("counter", CounterRep());
    EXPECT_TRUE(cap.ok());
    if (value > 0) {
      Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(value));
    }
    Status status = system_.Await(system_.node(0).CheckpointObject(cap->name()));
    EXPECT_TRUE(status.ok()) << status;
    return *cap;
  }

  EdenSystem system_;
};

TEST_F(ReliabilityFixture, CheckpointWritesToStableStore) {
  Capability cap = MakeCheckpointedCounter(5);
  EXPECT_TRUE(system_.node(0).HasCheckpoint(cap.name()));
  EXPECT_GT(system_.node(0).store().stats().writes, 0u);
}

TEST_F(ReliabilityFixture, CrashWithoutCheckpointLosesObject) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment");
  InvokeResult result = Call(system_.node(0), *cap, "crash");
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(system_.node(0).IsActive(cap->name()));
  // Never checkpointed: the object is simply gone.
  result = Call(system_.node(1), *cap, "read");
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST_F(ReliabilityFixture, CrashedObjectReincarnatesFromCheckpoint) {
  Capability cap = MakeCheckpointedCounter(7);
  // Mutate past the checkpoint; this increment will be lost.
  Call(system_.node(0), cap, "increment", InvokeArgs{}.AddU64(100));
  InvokeResult result = Call(system_.node(0), cap, "crash");
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(system_.node(0).IsActive(cap.name()));

  // Next invocation reincarnates the object from the last checkpoint:
  // the checkpointed 7 survives, the un-checkpointed 100 does not.
  result = Call(system_.node(1), cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 7u);
  EXPECT_TRUE(system_.node(0).IsActive(cap.name()));
  EXPECT_GT(system_.node(0).stats().activations, 0u);
}

TEST_F(ReliabilityFixture, NodeFailureThenRestartRecoversCheckpointedState) {
  Capability cap = MakeCheckpointedCounter(3);
  system_.node(0).FailNode();
  EXPECT_FALSE(system_.node(0).IsActive(cap.name()));

  // While the node is down the object is unreachable.
  InvokeResult result = system_.Await(
      system_.node(1).Invoke(cap, "read", {}, InvokeOptions::WithTimeout(Milliseconds(500))));
  EXPECT_FALSE(result.ok());

  system_.node(0).RestartNode();
  result = Call(system_.node(1), cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 3u);
}

TEST_F(ReliabilityFixture, RemoteChecksiteHoldsTheLongTermState) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  // Bind the checksite to node 2, then checkpoint through type code.
  auto object = system_.node(0).FindActive(cap->name());
  ASSERT_NE(object, nullptr);
  object->policy = CheckpointPolicy{system_.node(2).station(),
                                    ReliabilityLevel::kLocal, 0};
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(9));
  Status status = system_.Await(system_.node(0).CheckpointObject(cap->name()));
  ASSERT_TRUE(status.ok()) << status;

  EXPECT_FALSE(system_.node(0).HasCheckpoint(cap->name()));
  EXPECT_TRUE(system_.node(2).HasCheckpoint(cap->name()));

  // Node 0 (execution site) dies; the object reincarnates at its checksite.
  system_.node(0).FailNode();
  InvokeResult result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 9u);
  EXPECT_TRUE(system_.node(2).IsActive(cap->name()));
}

TEST_F(ReliabilityFixture, MirroredCheckpointWritesBothSites) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  auto object = system_.node(0).FindActive(cap->name());
  object->policy = CheckpointPolicy{system_.node(0).station(),
                                    ReliabilityLevel::kMirrored,
                                    system_.node(3).station()};
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(11));
  Status status = system_.Await(system_.node(0).CheckpointObject(cap->name()));
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_TRUE(system_.node(0).HasCheckpoint(cap->name()));
  // The mirror holds a copy but does NOT answer locate queries for it.
  EXPECT_FALSE(system_.node(3).HasCheckpoint(cap->name()));
  EXPECT_GT(system_.node(3).store().record_count(), 0u);
}

TEST_F(ReliabilityFixture, MirrorPromotesAutomaticallyAfterPermanentPrimaryLoss) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  auto object = system_.node(0).FindActive(cap->name());
  object->policy = CheckpointPolicy{system_.node(0).station(),
                                    ReliabilityLevel::kMirrored,
                                    system_.node(3).station()};
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(21));
  ASSERT_TRUE(system_.Await(system_.node(0).CheckpointObject(cap->name())).ok());

  // Node 0 (execution site AND primary checksite) is permanently lost. The
  // mirror holder answers the locate (after active and primary-passive
  // sites had their chance), promotes its mirror chain, and reincarnates
  // the object — no administrative intervention (DESIGN.md §11).
  system_.node(0).FailNode();
  InvokeResult result = Call(system_.node(1), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 21u);
  EXPECT_TRUE(system_.node(3).IsActive(cap->name()));
  EXPECT_TRUE(system_.node(3).HasCheckpoint(cap->name()));
  EXPECT_EQ(
      system_.node(3).metrics().counter("kernel.restore.fallbacks").value(),
      1u);
}

TEST(ReliabilityNoFallback, ManualMirrorPromotionStillRecovers) {
  // With the automatic fallback disabled, permanent primary loss leaves the
  // object unavailable until an administrator promotes the mirror.
  SystemConfig config;
  config.kernel.restore_fallback = false;
  EdenSystem system(config);
  system.RegisterType(MakeCounterType());
  system.AddNodes(4);

  auto cap = system.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  auto object = system.node(0).FindActive(cap->name());
  object->policy = CheckpointPolicy{system.node(0).station(),
                                    ReliabilityLevel::kMirrored,
                                    system.node(3).station()};
  system.Await(
      system.node(0).Invoke(*cap, "increment", InvokeArgs{}.AddU64(21)));
  ASSERT_TRUE(system.Await(system.node(0).CheckpointObject(cap->name())).ok());

  system.node(0).FailNode();
  InvokeResult result = system.Await(system.node(1).Invoke(
      *cap, "read", {}, InvokeOptions::WithTimeout(Milliseconds(500))));
  EXPECT_FALSE(result.ok());

  Status promoted = system.Await(system.node(3).PromoteMirror(cap->name()));
  ASSERT_TRUE(promoted.ok()) << promoted;
  result = system.Await(system.node(1).Invoke(*cap, "read", {}));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 21u);
  EXPECT_TRUE(system.node(3).IsActive(cap->name()));
}

TEST_F(ReliabilityFixture, CheckpointToUnreachableChecksiteFails) {
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  auto object = system_.node(0).FindActive(cap->name());
  object->policy = CheckpointPolicy{system_.node(2).station(),
                                    ReliabilityLevel::kLocal, 0};
  system_.node(2).FailNode();
  Status status = system_.Await(system_.node(0).CheckpointObject(cap->name()));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(ReliabilityFixture, ReincarnationHandlerRunsBeforeDispatch) {
  // A type whose reincarnation handler rebuilds a short-term marker that the
  // operation then reads: proves ordering (handler before queued invocation).
  auto type = std::make_shared<TypeManager>("phoenix");
  type->SetReincarnation([](InvokeContext& ctx) -> Task<Status> {
    ctx.rep().SetDataFromString(1, "reborn");
    co_return OkStatus();
  });
  type->AddOperation(OperationSpec{
      .name = "marker",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_return InvokeResult::Ok(
            InvokeArgs{}.AddString(ctx.rep().DataAsString(1)));
      },
  });
  type->AddOperation(OperationSpec{
      .name = "prepare",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Status status = co_await ctx.Checkpoint();
        ctx.Crash();
        co_return InvokeResult{status, {}};
      },
  });
  system_.RegisterType(type);

  auto cap = system_.node(0).CreateObject("phoenix", Representation{});
  ASSERT_TRUE(cap.ok());
  // Fresh object: marker segment empty.
  InvokeResult result = Call(system_.node(0), *cap, "marker");
  EXPECT_EQ(result.results.StringAt(0).value(), "");
  // Checkpoint + crash, then reincarnate.
  ASSERT_TRUE(Call(system_.node(0), *cap, "prepare").ok());
  result = Call(system_.node(1), *cap, "marker");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.StringAt(0).value(), "reborn");
}

TEST_F(ReliabilityFixture, CrashWakesBlockedInvocationsWithAbort) {
  // One invocation blocks on a semaphore; crashing the object must wake it
  // (short-term state destruction) rather than leaving it suspended forever.
  auto type = std::make_shared<TypeManager>("blocker");
  size_t parallel = type->AddClass("parallel", 8);
  type->AddOperation(OperationSpec{
      .name = "block",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Status status = co_await ctx.semaphore("gate", 0).P();
        co_return InvokeResult{status, {}};
      },
      .invocation_class = parallel,
  });
  type->AddOperation(OperationSpec{
      .name = "crash",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        ctx.Crash();
        co_return InvokeResult::Ok();
      },
      .invocation_class = parallel,
  });
  system_.RegisterType(type);

  auto cap = system_.node(0).CreateObject("blocker", Representation{});
  ASSERT_TRUE(cap.ok());
  Future<InvokeResult> blocked = system_.node(1).Invoke(*cap, "block");
  system_.RunFor(Milliseconds(50));
  EXPECT_FALSE(blocked.ready());

  InvokeResult crash_result = Call(system_.node(2), *cap, "crash");
  EXPECT_TRUE(crash_result.ok());
  InvokeResult result = system_.Await(std::move(blocked));
  EXPECT_EQ(result.status.code(), StatusCode::kAborted);
}

TEST_F(ReliabilityFixture, DestroyErasesLongTermStateEverywhere) {
  auto type = std::make_shared<TypeManager>("mortal");
  type->AddOperation(OperationSpec{
      .name = "retire",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_await ctx.Checkpoint();
        ctx.Destroy();
        co_return InvokeResult::Ok();
      },
  });
  system_.RegisterType(type);
  auto cap = system_.node(0).CreateObject("mortal", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(0), *cap, "retire").ok());
  EXPECT_FALSE(system_.node(0).HasCheckpoint(cap->name()));
  InvokeResult result = Call(system_.node(1), *cap, "retire");
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST_F(ReliabilityFixture, StaleForwardingToDeadNodeFallsBackToChecksite) {
  // An object is created (and checkpointed) on node 0, migrates to node 1,
  // keeps checkpointing to node 0, and then node 1 dies. The forwarding
  // address on node 0 points at a corpse; invokers must discover this and
  // reincarnate the object from node 0's checkpoint.
  auto cap = system_.node(0).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  Call(system_.node(0), *cap, "increment", InvokeArgs{}.AddU64(5));
  ASSERT_TRUE(system_.Await(system_.node(0).CheckpointObject(cap->name())).ok());

  // Migrate to node 1 (keep the checksite at node 0), update the checkpoint.
  auto object = system_.node(0).FindActive(cap->name());
  Future<Status> move_done =
      system_.node(0).MoveObject(object, system_.node(1).station());
  ASSERT_TRUE(system_.Await(std::move(move_done)).ok());
  system_.RunFor(Milliseconds(10));
  ASSERT_TRUE(system_.node(1).IsActive(cap->name()));
  Call(system_.node(2), *cap, "increment", InvokeArgs{}.AddU64(2));
  ASSERT_TRUE(system_.Await(system_.node(1).CheckpointObject(cap->name())).ok());

  // The new host dies. The invocation takes the slow path (dead-host
  // discovery + re-locate + checksite reincarnation) but succeeds.
  system_.node(1).FailNode();
  InvokeResult result = Call(system_.node(2), *cap, "read");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 7u);
  EXPECT_TRUE(system_.node(0).IsActive(cap->name()));
}

TEST_F(ReliabilityFixture, RepeatedCheckpointCrashCyclesConverge) {
  Capability cap = MakeCheckpointedCounter(0);
  for (uint64_t round = 1; round <= 5; round++) {
    InvokeResult result = Call(system_.node(1), cap, "increment");
    ASSERT_TRUE(result.ok()) << result.status;
    EXPECT_EQ(result.results.U64At(0).value(), round);
    ASSERT_TRUE(Call(system_.node(1), cap, "checkpoint").ok());
    ASSERT_TRUE(Call(system_.node(1), cap, "crash").ok());
  }
  InvokeResult result = Call(system_.node(3), cap, "read");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.U64At(0).value(), 5u);
}

}  // namespace
}  // namespace eden
