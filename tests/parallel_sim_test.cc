// Gates for the parallel sharded engine (DESIGN.md §14).
//
// The acceptance bar is the determinism oracle: a sharded run must execute,
// per node, the bit-identical message history as the single-shard run of the
// same seed — fingerprinted by NodeKernel::digest(), which mixes (arrival
// time, sender, payload hash) at every OnMessage. The tests here compare
// those digests across shard counts, across pinned placements (tie-ordering),
// and across the two drive modes (threaded vs round-robin), plus unit checks
// for the SPSC channel and the lookahead bound.
//
// Tracing stays off in every digest comparison: span ids ride inside wire
// bytes and are collector-local, so traced runs are only self-consistent.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/kernel/eden_system.h"
#include "src/sim/spsc_queue.h"
#include "src/trace/span.h"
#include "src/types/standard_types.h"
#include "src/workload/workload.h"

namespace eden {
namespace {

TEST(SpscQueue, FifoOrderAndEmptiness) {
  SpscQueue<int> queue;
  EXPECT_TRUE(queue.Empty());
  int out = 0;
  EXPECT_FALSE(queue.Pop(out));
  for (int i = 0; i < 100; i++) {
    queue.Push(i);
  }
  EXPECT_FALSE(queue.Empty());
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(queue.Pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(queue.Empty());
}

// One producer thread, one consumer thread; every value must arrive once and
// in order. Mostly valuable under the TSan CI job.
TEST(SpscQueue, ConcurrentProducerConsumer) {
  SpscQueue<uint64_t> queue;
  constexpr uint64_t kCount = 100000;
  std::thread producer([&queue] {
    for (uint64_t i = 0; i < kCount; i++) {
      queue.Push(i);
    }
  });
  uint64_t expected = 0;
  uint64_t value = 0;
  while (expected < kCount) {
    if (queue.Pop(value)) {
      ASSERT_EQ(value, expected);
      expected++;
    }
  }
  producer.join();
  EXPECT_TRUE(queue.Empty());
}

std::vector<uint64_t> NodeDigests(EdenSystem& system) {
  std::vector<uint64_t> digests;
  for (size_t n = 0; n < system.node_count(); n++) {
    digests.push_back(system.node(n).digest().value());
  }
  return digests;
}

struct ScenarioResult {
  std::vector<uint64_t> digests;
  uint64_t completed = 0;
  uint64_t failed = 0;
};

// The main oracle scenario: eight nodes, closed-loop clients on all of them,
// targets on nodes 0 and 5 so traffic crosses every shard boundary under
// every tested layout. `think` > 0 additionally exercises the per-client
// workload rngs (draw sequences must not depend on the layout either).
ScenarioResult RunMixedScenario(uint64_t seed, size_t shards,
                                SimDuration think) {
  SystemConfig config;
  config.seed = seed;
  config.shards = shards;
  EdenSystem system(config);
  RegisterStandardTypes(system);
  system.AddNodes(8);
  Capability low = *system.node(0).CreateObject("std.counter", Representation{});
  Capability high =
      *system.node(5).CreateObject("std.counter", Representation{});
  WorkFactory factory = [low, high](size_t client, uint64_t seq) {
    const Capability& target = ((client + seq) % 2 == 0) ? low : high;
    return WorkItem{target, "increment", InvokeArgs{}.AddU64(1)};
  };
  WorkloadStats stats = RunClosedLoop(system, {0, 1, 2, 3, 4, 5, 6, 7},
                                      factory, Milliseconds(40), think);
  ScenarioResult result;
  result.digests = NodeDigests(system);
  result.completed = stats.completed;
  result.failed = stats.failed;
  return result;
}

TEST(ParallelSim, DigestsMatchAcrossShardCounts) {
  for (uint64_t seed : {3u, 11u}) {
    ScenarioResult oracle = RunMixedScenario(seed, 1, Microseconds(200));
    EXPECT_GT(oracle.completed, 0u);
    for (size_t shards : {2u, 4u, 8u}) {
      ScenarioResult parallel = RunMixedScenario(seed, shards,
                                                 Microseconds(200));
      EXPECT_EQ(parallel.digests, oracle.digests)
          << "seed " << seed << ", " << shards << " shards";
      EXPECT_EQ(parallel.completed, oracle.completed);
      EXPECT_EQ(parallel.failed, oracle.failed);
    }
  }
}

TEST(ParallelSim, DigestsMatchWithoutThinkTime) {
  // think == 0 keeps every client saturated: the densest tie pattern.
  ScenarioResult oracle = RunMixedScenario(29, 1, 0);
  ScenarioResult parallel = RunMixedScenario(29, 4, 0);
  EXPECT_GT(oracle.completed, 0u);
  EXPECT_EQ(parallel.digests, oracle.digests);
  EXPECT_EQ(parallel.completed, oracle.completed);
}

// Fan-in scenario driven by explicit futures and a fixed RunUntil deadline,
// so the serial and sharded drives execute exactly the same closed event set.
// `shards == 0` runs the switched LAN under the plain single-threaded
// simulation — the pass-through oracle for the one-shard engine.
std::vector<uint64_t> RunFanInDigest(size_t shards) {
  SystemConfig config;
  config.seed = 21;
  config.shards = shards;
  EdenSystem system(config);
  if (shards == 0) {
    system.lan().EnableSwitched();
  }
  RegisterStandardTypes(system);
  system.AddNodes(4);
  Capability cap = *system.node(0).CreateObject("std.counter", Representation{});
  std::vector<Future<InvokeResult>> futures;
  for (size_t i = 1; i < 4; i++) {
    for (int k = 0; k < 5; k++) {
      futures.push_back(system.node(i).Invoke(cap, "increment"));
    }
  }
  system.RunUntil(Milliseconds(500));
  for (auto& future : futures) {
    EXPECT_TRUE(future.ready());
  }
  return NodeDigests(system);
}

TEST(ParallelSim, ShardCountOnePassesThroughToSerialSwitched) {
  EXPECT_EQ(RunFanInDigest(1), RunFanInDigest(0));
}

// Both drive modes chunk the same per-shard event sequences; only the window
// boundaries differ.
std::vector<uint64_t> RunFanOutDigest(bool threaded) {
  SystemConfig config;
  config.seed = 9;
  config.shards = 4;
  EdenSystem system(config);
  RegisterStandardTypes(system);
  system.AddNodes(8);
  Capability cap = *system.node(2).CreateObject("std.counter", Representation{});
  std::vector<Future<InvokeResult>> futures;
  for (size_t i = 0; i < 8; i++) {
    if (i == 2) {
      continue;
    }
    for (int k = 0; k < 2; k++) {
      futures.push_back(system.node(i).Invoke(cap, "increment"));
    }
  }
  system.engine()->RunUntil(Milliseconds(500), threaded);
  for (auto& future : futures) {
    EXPECT_TRUE(future.ready());
  }
  return NodeDigests(system);
}

TEST(ParallelSim, ThreadedMatchesRoundRobin) {
  EXPECT_EQ(RunFanOutDigest(true), RunFanOutDigest(false));
}

// Two saturated senders racing identical-size frames at one receiver: the
// receiver's merge order must come from the canonical (receiver, sender,
// pair-seq) delivery keys, not from which shard each sender happens to
// occupy.
std::vector<uint64_t> RunPinnedLayout(uint32_t shard_a, uint32_t shard_b) {
  SystemConfig config;
  config.seed = 17;
  config.shards = 2;
  EdenSystem system(config);
  RegisterStandardTypes(system);
  system.AddNode("receiver").WithShard(0);
  system.AddNode("a").WithShard(shard_a);
  system.AddNode("b").WithShard(shard_b);
  Capability cap = *system.node(0).CreateObject("std.counter", Representation{});
  WorkFactory factory = [cap](size_t, uint64_t) {
    return WorkItem{cap, "increment", InvokeArgs{}.AddU64(1)};
  };
  WorkloadStats stats =
      RunClosedLoop(system, {1, 2}, factory, Milliseconds(30), 0);
  EXPECT_GT(stats.completed, 0u);
  return NodeDigests(system);
}

TEST(ParallelSim, TieOrderingIndependentOfPlacement) {
  EXPECT_EQ(RunPinnedLayout(0, 1), RunPinnedLayout(1, 0));
}

TEST(ParallelSim, LookaheadMatchesMinimumWireLatency) {
  SystemConfig config;
  config.shards = 2;
  EdenSystem system(config);
  EXPECT_GT(system.lan().lookahead(), 0);
  EXPECT_EQ(system.engine()->lookahead(), system.lan().lookahead());
  EXPECT_GE(system.lan().lookahead(), system.config().lan.propagation_delay);
}

// A cross-shard invocation leaves its root on the client's collector and a
// fragment on the server's; MergeSpans must reunite them into one tree.
TEST(ParallelSim, CrossShardSpansRejoinOnMerge) {
  SystemConfig config;
  config.seed = 5;
  config.shards = 2;
  EdenSystem system(config);
  SpanCollector spans;
  system.set_span_collector(&spans);
  RegisterStandardTypes(system);
  system.AddNode("client").WithShard(0);
  system.AddNode("server").WithShard(1);
  Capability cap = *system.node(1).CreateObject("std.counter", Representation{});
  for (int k = 0; k < 3; k++) {
    ASSERT_TRUE(system.Await(system.node(0).Invoke(cap, "increment")).ok());
  }
  system.MergeSpans();
  EXPECT_GT(spans.stats().traces_completed, 0u);
  bool cross_shard_tree = false;
  for (const TraceTree& tree : spans.completed()) {
    bool on_client = false;
    bool on_server = false;
    for (const Span& span : tree.spans) {
      on_client |= span.node == system.node(0).station();
      on_server |= span.node == system.node(1).station();
    }
    cross_shard_tree |= on_client && on_server;
  }
  EXPECT_TRUE(cross_shard_tree);
}

}  // namespace
}  // namespace eden
