// Tests for the object-editor substrate: structured representations and the
// inheritable editing operations (paper section 5).
#include <gtest/gtest.h>

#include "src/edit/editable.h"
#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

StructureNode SampleDocument() {
  StructureNode root("document", "Eden Design Notes");
  StructureNode& intro = root.AddChild("section", "Introduction");
  intro.AddChild("para", "Integration vs distribution.");
  StructureNode& kernel = root.AddChild("section", "Kernel");
  kernel.AddChild("para", "Objects and capabilities.");
  kernel.AddChild("para", "Invocation is synchronous.");
  return root;
}

TEST(StructurePathTest, ParseAndFormatRoundTrip) {
  auto path = ParseStructurePath("0/2/15");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (StructurePath{0, 2, 15}));
  EXPECT_EQ(FormatStructurePath(*path), "0/2/15");
  EXPECT_TRUE(ParseStructurePath("")->empty());
}

TEST(StructurePathTest, RejectsMalformedPaths) {
  EXPECT_FALSE(ParseStructurePath("a/b").ok());
  EXPECT_FALSE(ParseStructurePath("1//2").ok());
  EXPECT_FALSE(ParseStructurePath("/1").ok());
}

TEST(StructureNodeTest, CodecRoundTrip) {
  StructureNode root = SampleDocument();
  auto decoded = StructureNode::Deserialize(root.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, root);
  EXPECT_EQ(decoded->TotalNodes(), 6u);
}

TEST(StructureNodeTest, DeserializeRejectsGarbageAndTrailingBytes) {
  Bytes garbage = {0xff, 0xff, 0xff};
  EXPECT_FALSE(StructureNode::Deserialize(garbage).ok());
  Bytes valid = SampleDocument().Serialize();
  valid.push_back(0x00);
  EXPECT_FALSE(StructureNode::Deserialize(valid).ok());
}

TEST(StructureNodeTest, PathOperations) {
  StructureNode root = SampleDocument();
  auto node = root.Find({1, 0});
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->value(), "Objects and capabilities.");

  ASSERT_TRUE(root.SetValueAt({0, 0}, "Revised intro.").ok());
  EXPECT_EQ(root.Find({0, 0}).value()->value(), "Revised intro.");

  ASSERT_TRUE(root.InsertAt({1}, 1, "para", "Inserted paragraph.").ok());
  EXPECT_EQ(root.Find({1, 1}).value()->value(), "Inserted paragraph.");
  EXPECT_EQ(root.Find({1, 2}).value()->value(), "Invocation is synchronous.");

  ASSERT_TRUE(root.RemoveAt({0}).ok());
  EXPECT_EQ(root.child(0).value(), "Kernel");

  EXPECT_FALSE(root.Find({9}).ok());
  EXPECT_FALSE(root.RemoveAt({}).ok());
  EXPECT_FALSE(root.InsertAt({0}, 99, "x", "y").ok());
}

TEST(StructureNodeTest, RenderShowsHierarchy) {
  std::string text = SampleDocument().Render();
  EXPECT_NE(text.find("document: Eden Design Notes"), std::string::npos);
  EXPECT_NE(text.find("  section: Kernel"), std::string::npos);
  EXPECT_NE(text.find("    para: Invocation is synchronous."), std::string::npos);
}

class EditableFixture : public ::testing::Test {
 protected:
  EditableFixture() {
    RegisterStandardTypes(system_);
    RegisterEditTypes(system_);
    system_.AddNodes(3);
    doc_ = *system_.node(0).CreateObject("edit.document",
                                         StructureRep(SampleDocument()));
  }

  InvokeResult Call(size_t node, const std::string& op, InvokeArgs args = {}) {
    return system_.Await(system_.node(node).Invoke(doc_, op, std::move(args)));
  }

  EdenSystem system_;
  Capability doc_;
};

TEST_F(EditableFixture, RenderFromRemoteNode) {
  InvokeResult result = Call(2, "edit.render");
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_NE(result.results.StringAt(0).value().find("section: Kernel"),
            std::string::npos);
}

TEST_F(EditableFixture, GetSetInsertRemove) {
  InvokeResult result = Call(1, "edit.get", InvokeArgs{}.AddString("1"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.StringAt(1).value(), "Kernel");
  EXPECT_EQ(result.results.U64At(2).value(), 2u);

  ASSERT_TRUE(Call(1, "edit.set",
                   InvokeArgs{}.AddString("1/0").AddString("Rewritten."))
                  .ok());
  result = Call(2, "edit.get", InvokeArgs{}.AddString("1/0"));
  EXPECT_EQ(result.results.StringAt(1).value(), "Rewritten.");

  ASSERT_TRUE(Call(1, "edit.insert",
                   InvokeArgs{}
                       .AddString("")
                       .AddU64(2)
                       .AddString("section")
                       .AddString("Reliability"))
                  .ok());
  result = Call(2, "edit.count");
  EXPECT_EQ(result.results.U64At(0).value(), 7u);

  ASSERT_TRUE(Call(1, "edit.remove", InvokeArgs{}.AddString("0")).ok());
  result = Call(2, "edit.count");
  EXPECT_EQ(result.results.U64At(0).value(), 5u);
}

TEST_F(EditableFixture, EditsAreCrashDurable) {
  ASSERT_TRUE(Call(1, "edit.set",
                   InvokeArgs{}.AddString("").AddString("Durable Title"))
                  .ok());
  ASSERT_TRUE(Call(1, "crash").ok());
  EXPECT_FALSE(system_.node(0).IsActive(doc_.name()));
  InvokeResult result = Call(2, "edit.get", InvokeArgs{}.AddString(""));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.StringAt(1).value(), "Durable Title");
}

TEST_F(EditableFixture, InvalidPathsAreRejectedNotFatal) {
  EXPECT_EQ(Call(1, "edit.get", InvokeArgs{}.AddString("9/9")).status.code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Call(1, "edit.set",
                 InvokeArgs{}.AddString("bogus!").AddString("x"))
                .status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Call(1, "edit.remove", InvokeArgs{}.AddString("")).status.code(),
            StatusCode::kInvalidArgument);
  // The document is still healthy.
  EXPECT_TRUE(Call(2, "edit.render").ok());
}

TEST_F(EditableFixture, InheritsKernelOpsFromStdObject) {
  InvokeResult result = Call(1, "describe");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.results.StringAt(0).value(), "edit.document");
  // And the editor ops come from std.editable: three-level inheritance.
  EXPECT_TRUE(EditDocumentType()->IsSubtypeOf(*StdEditableType()));
  EXPECT_TRUE(EditDocumentType()->IsSubtypeOf(*StdObjectType()));
}

TEST_F(EditableFixture, OutlineSubtypeOverridesInheritedDisplayCode) {
  // The same structure renders differently through the edit.outline subtype:
  // inherited edit.* operations, overridden edit.render (paper section 5,
  // "display code for use with the object editor" as an inherited, and here
  // specialized, attribute).
  auto outline = system_.node(0).CreateObject("edit.outline",
                                              StructureRep(SampleDocument()));
  ASSERT_TRUE(outline.ok());
  InvokeResult rendered =
      system_.Await(system_.node(1).Invoke(*outline, "edit.render"));
  ASSERT_TRUE(rendered.ok()) << rendered.status;
  std::string text = rendered.results.StringAt(0).value();
  EXPECT_NE(text.find("2. Kernel"), std::string::npos);
  EXPECT_NE(text.find("2.2. Invocation is synchronous."), std::string::npos);
  EXPECT_EQ(text.find("  section"), std::string::npos);  // no indent style

  // Non-overridden operations still come from std.editable.
  ASSERT_TRUE(system_.Await(system_.node(1).Invoke(
      *outline, "edit.set",
      InvokeArgs{}.AddString("1").AddString("The Kernel"))).ok());
  rendered = system_.Await(system_.node(2).Invoke(*outline, "edit.render"));
  EXPECT_NE(rendered.results.StringAt(0).value().find("2. The Kernel"),
            std::string::npos);
}

TEST_F(EditableFixture, ConcurrentViewersOneEditor) {
  // Viewers (limit 8) render concurrently while an editor mutates: the
  // editors class (limit 1) serializes mutations; nothing deadlocks.
  std::vector<Future<InvokeResult>> futures;
  for (int i = 0; i < 8; i++) {
    futures.push_back(system_.node(1 + i % 2).Invoke(doc_, "edit.render"));
  }
  futures.push_back(system_.node(2).Invoke(
      doc_, "edit.set", InvokeArgs{}.AddString("").AddString("New Title")));
  for (auto& future : futures) {
    EXPECT_TRUE(system_.Await(std::move(future)).ok());
  }
}

}  // namespace
}  // namespace eden
