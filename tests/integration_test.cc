// Cross-module integration tests: multi-node scenarios combining invocation,
// directories, EFS, behaviors, migration and failure injection — the "Figure
// 1 installation" exercised end to end.
#include <gtest/gtest.h>

#include "src/efs/client.h"
#include "src/efs/file_store.h"
#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  IntegrationFixture() {
    RegisterStandardTypes(system_);
    RegisterEfsTypes(system_);
    // The paper's late-1981 plan: five nodes, one acting as a file server.
    system_.AddNodes(5);
  }

  InvokeResult Call(NodeKernel& from, const Capability& cap, const std::string& op,
                    InvokeArgs args = {}) {
    return system_.Await(from.Invoke(cap, op, std::move(args)));
  }

  EdenSystem system_;
};

TEST_F(IntegrationFixture, DirectoryNamedServicesAcrossNodes) {
  // A system directory on the "file server" (node 4) names services living on
  // other nodes; every user finds and uses them purely through capabilities.
  auto dir = system_.node(4).CreateObject("std.directory", Representation{});
  ASSERT_TRUE(dir.ok());

  auto printer_queue = system_.node(1).CreateObject("std.queue", Representation{});
  auto hit_counter = system_.node(2).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(printer_queue.ok());
  ASSERT_TRUE(hit_counter.ok());
  ASSERT_TRUE(Call(system_.node(1), *dir, "bind",
                   InvokeArgs{}.AddString("printer").AddCapability(*printer_queue))
                  .ok());
  ASSERT_TRUE(Call(system_.node(2), *dir, "bind",
                   InvokeArgs{}.AddString("hits").AddCapability(*hit_counter))
                  .ok());

  // Node 3 (which created nothing) looks up and uses both services.
  InvokeResult lookup = Call(system_.node(3), *dir, "lookup",
                             InvokeArgs{}.AddString("printer"));
  ASSERT_TRUE(lookup.ok());
  Capability printer = lookup.results.CapabilityAt(0).value();
  ASSERT_TRUE(Call(system_.node(3), printer, "enqueue",
                   InvokeArgs{}.AddString("job-1")).ok());

  lookup = Call(system_.node(3), *dir, "lookup", InvokeArgs{}.AddString("hits"));
  ASSERT_TRUE(lookup.ok());
  ASSERT_TRUE(
      Call(system_.node(3), lookup.results.CapabilityAt(0).value(), "increment")
          .ok());

  InvokeResult job = Call(system_.node(1), printer, "dequeue");
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(ToString(job.results.BytesAt(0).value()), "job-1");
}

TEST_F(IntegrationFixture, ExactlyOnceCountingUnderHeavyFrameLoss) {
  // 20% frame loss: retransmission and duplicate suppression must deliver
  // exactly-once invocation execution — the counter ends exactly at N.
  system_.lan().set_loss_probability(0.2);
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());

  constexpr int kIncrements = 40;
  int ok_count = 0;
  for (int i = 0; i < kIncrements; i++) {
    InvokeResult result = Call(system_.node(1 + i % 4), *cap, "increment");
    if (result.ok()) {
      ok_count++;
    }
  }
  system_.lan().set_loss_probability(0.0);
  InvokeResult read = Call(system_.node(2), *cap, "read");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.results.U64At(0).value(), static_cast<uint64_t>(ok_count));
  EXPECT_EQ(ok_count, kIncrements);  // reliable transport rode out the loss
}

TEST_F(IntegrationFixture, MigrationUnderConcurrentLoad) {
  // Clients hammer a counter while it moves between nodes; no increment is
  // lost or duplicated.
  auto cap = system_.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());

  std::vector<Future<InvokeResult>> in_flight;
  for (int i = 0; i < 10; i++) {
    in_flight.push_back(system_.node(1 + i % 4).Invoke(*cap, "increment"));
  }
  // Kick off the move while those are in flight.
  Future<InvokeResult> move = system_.node(1).Invoke(
      *cap, "move_to", InvokeArgs{}.AddU64(system_.node(3).station()));
  for (int i = 0; i < 10; i++) {
    in_flight.push_back(system_.node(1 + i % 4).Invoke(*cap, "increment"));
  }

  int ok_count = 0;
  for (auto& future : in_flight) {
    if (system_.Await(std::move(future)).ok()) {
      ok_count++;
    }
  }
  ASSERT_TRUE(system_.Await(std::move(move)).ok());
  system_.RunFor(Milliseconds(50));

  EXPECT_TRUE(system_.node(3).IsActive(cap->name()));
  InvokeResult read = Call(system_.node(2), *cap, "read");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.results.U64At(0).value(), static_cast<uint64_t>(ok_count));
  EXPECT_EQ(ok_count, 20);
}

TEST_F(IntegrationFixture, CaretakerBehaviorCheckpointsPeriodically) {
  // A type with a caretaker behavior (paper section 4.2: "behaviors can be
  // used to perform object caretaking") that checkpoints every 100 ms. After
  // a node failure, at most one checkpoint interval of work is lost.
  auto type = std::make_shared<AbstractType>("journal", StdObjectType());
  type->AddClass("writers", 1);
  type->AddOperation(AbstractOperation{
      .name = "log",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Bytes& segment = ctx.rep().mutable_data(0);
        auto line = ctx.args().BytesAt(0);
        segment.insert(segment.end(), line->begin(), line->end());
        segment.push_back('\n');
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "writers",
  });
  type->AddOperation(AbstractOperation{
      .name = "dump",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Bytes content =
            ctx.rep().data_segment_count() > 0 ? ctx.rep().data(0) : Bytes{};
        co_return InvokeResult::Ok(InvokeArgs{}.AddBytes(std::move(content)));
      },
      .read_only = true,
  });
  type->AddBehavior("autosave", [](InvokeContext& ctx) -> Task<void> {
    while (ctx.alive()) {
      co_await ctx.Sleep(Milliseconds(100));
      if (!ctx.alive()) {
        break;
      }
      co_await ctx.Checkpoint();
    }
  });
  system_.RegisterType(type->BuildTypeManager());

  auto cap = system_.node(0).CreateObject("journal", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(Call(system_.node(1), *cap, "log",
                   InvokeArgs{}.AddString("entry one")).ok());
  // Let the caretaker take at least one checkpoint.
  system_.RunFor(Milliseconds(300));
  system_.node(0).FailNode();
  system_.node(0).RestartNode();

  InvokeResult dump = Call(system_.node(1), *cap, "dump");
  ASSERT_TRUE(dump.ok()) << dump.status;
  EXPECT_NE(ToString(dump.results.BytesAt(0).value()).find("entry one"),
            std::string::npos);
}

TEST_F(IntegrationFixture, EfsAndDirectoryComposeIntoAFileSystem) {
  // EFS stores on nodes 3 and 4, a directory naming "volumes", and clients on
  // other nodes reading/writing through the composed system.
  std::vector<Capability> stores;
  for (size_t i = 3; i <= 4; i++) {
    auto cap = system_.node(i).CreateObject("efs.store", Representation{});
    ASSERT_TRUE(cap.ok());
    stores.push_back(*cap);
  }
  auto dir = system_.node(4).CreateObject("std.directory", Representation{});
  ASSERT_TRUE(dir.ok());
  for (size_t i = 0; i < stores.size(); i++) {
    ASSERT_TRUE(Call(system_.node(4), *dir, "bind",
                     InvokeArgs{}
                         .AddString("volume" + std::to_string(i))
                         .AddCapability(stores[i]))
                    .ok());
  }

  // A client discovers the volumes through the directory.
  std::vector<Capability> discovered;
  for (size_t i = 0; i < 2; i++) {
    InvokeResult lookup = Call(system_.node(0), *dir, "lookup",
                               InvokeArgs{}.AddString("volume" + std::to_string(i)));
    ASSERT_TRUE(lookup.ok());
    discovered.push_back(lookup.results.CapabilityAt(0).value());
  }
  EfsClient client(system_.node(0), discovered);
  ASSERT_TRUE(system_.Await(client.CreateFile("/home/readme")).ok());
  auto txn = client.Begin();
  txn.Write("/home/readme", ToBytes("Eden lives"));
  ASSERT_TRUE(system_.Await(txn.Commit()).ok());

  // Node 4 dies; reads fail over to node 3's replica.
  system_.node(4).FailNode();
  auto content = system_.Await(client.Read("/home/readme"));
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(ToString(*content), "Eden lives");
}

TEST_F(IntegrationFixture, AsynchronousInvocationOverlapsWork) {
  // Fire several invocations without awaiting (asynchronous invocation,
  // paper section 4.2), then collect: total virtual time is bounded by the
  // slowest, not the sum.
  auto type = std::make_shared<AbstractType>("sleeper", StdObjectType());
  type->AddClass("parallel", 8);
  type->AddOperation(AbstractOperation{
      .name = "nap",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        co_await ctx.Sleep(Milliseconds(100));
        co_return InvokeResult::Ok();
      },
      .invocation_class = "parallel",
  });
  system_.RegisterType(type->BuildTypeManager());
  auto cap = system_.node(0).CreateObject("sleeper", Representation{});
  ASSERT_TRUE(cap.ok());

  SimTime start = system_.sim().now();
  std::vector<Future<InvokeResult>> futures;
  for (int i = 0; i < 5; i++) {
    futures.push_back(system_.node(1).Invoke(*cap, "nap"));
  }
  for (auto& future : futures) {
    ASSERT_TRUE(system_.Await(std::move(future)).ok());
  }
  SimDuration elapsed = system_.sim().now() - start;
  EXPECT_LT(elapsed, Milliseconds(200));  // 5 x 100ms ran concurrently
}

TEST_F(IntegrationFixture, PolicyObjectRelocatesOtherObjects) {
  // "Some objects may have the ability to make location decisions for other
  // objects in the system" (section 4.3). A policy object receives
  // capabilities and rebalances them across nodes round-robin.
  auto policy_type = std::make_shared<AbstractType>("placement.policy",
                                                    StdObjectType());
  policy_type->AddOperation(AbstractOperation{
      .name = "rebalance",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        // args: [station...u64 data], caps: the objects to spread out.
        uint64_t moved = 0;
        for (size_t i = 0; i < ctx.args().caps.size(); i++) {
          auto station = ctx.args().U64At(i % ctx.args().data.size());
          InvokeResult result = co_await ctx.Invoke(
              ctx.args().caps[i], "move_to", InvokeArgs{}.AddU64(*station));
          if (result.ok()) {
            moved++;
          }
        }
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(moved));
      },
      .required_rights = Rights(Rights::kInvoke),
  });
  system_.RegisterType(policy_type->BuildTypeManager());

  // Three counters, all born on node 0.
  std::vector<Capability> counters;
  for (int i = 0; i < 3; i++) {
    auto cap = system_.node(0).CreateObject("std.counter", Representation{});
    ASSERT_TRUE(cap.ok());
    counters.push_back(*cap);
  }
  auto policy = system_.node(4).CreateObject("placement.policy", Representation{});
  ASSERT_TRUE(policy.ok());

  InvokeArgs args;
  args.AddU64(system_.node(1).station());
  args.AddU64(system_.node(2).station());
  args.AddU64(system_.node(3).station());
  for (const Capability& counter : counters) {
    args.AddCapability(counter);
  }
  InvokeResult result = Call(system_.node(4), *policy, "rebalance", std::move(args));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 3u);
  system_.RunFor(Milliseconds(50));

  EXPECT_TRUE(system_.node(1).IsActive(counters[0].name()));
  EXPECT_TRUE(system_.node(2).IsActive(counters[1].name()));
  EXPECT_TRUE(system_.node(3).IsActive(counters[2].name()));
  for (const Capability& counter : counters) {
    EXPECT_TRUE(Call(system_.node(0), counter, "increment").ok());
  }
}

}  // namespace
}  // namespace eden
