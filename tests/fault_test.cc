// Chaos-layer tests (DESIGN.md §11): the standard fault storm must never
// lose acknowledged checkpointed state, every request must eventually
// complete once the storm passes, peer health must walk its state machine
// deterministically, and a chaotic run must be exactly as reproducible as a
// clean one.
#include <gtest/gtest.h>

#include "src/fault/fault.h"
#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"
#include "tests/test_util.h"

namespace eden {
namespace {

// Write-through log type (same idiom as failure_test.cc): every accepted
// append is checkpointed before the reply, so an acknowledged append must
// survive anything the chaos layer throws at the system.
std::shared_ptr<TypeManager> MakeWalType() {
  auto type = std::make_shared<AbstractType>("wal", StdObjectType());
  type->AddClass("writers", 1);
  type->AddOperation(AbstractOperation{
      .name = "append",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        auto entry = ctx.args().U64At(0);
        if (!entry.ok()) {
          co_return InvokeResult::Error(entry.status());
        }
        Bytes& log = ctx.rep().mutable_data(0);
        BufferWriter writer;
        writer.WriteU64(*entry);
        log.insert(log.end(), writer.buffer().begin(), writer.buffer().end());
        Status durable = co_await ctx.Checkpoint();
        if (!durable.ok()) {
          co_return InvokeResult::Error(durable);
        }
        co_return InvokeResult::Ok(InvokeArgs{}.AddU64(log.size() / 8));
      },
      .required_rights = Rights(Rights::kInvoke | Rights::kWrite),
      .invocation_class = "writers",
  });
  type->AddOperation(AbstractOperation{
      .name = "entries",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        Bytes log = ctx.rep().data_segment_count() ? ctx.rep().data(0) : Bytes{};
        InvokeArgs out;
        BufferReader reader(log);
        while (!reader.AtEnd()) {
          auto entry = reader.ReadU64();
          if (!entry.ok()) {
            break;
          }
          out.AddU64(*entry);
        }
        co_return InvokeResult::Ok(std::move(out));
      },
      .read_only = true,
  });
  return type->BuildTypeManager();
}

// The acceptance storm: wire corruption/duplication/delay on every link plus
// base loss, flaky disks under the primary and its crash-restart cycles, one
// partition/heal epoch. Acked appends must all survive; once the storm ends
// the system must return to 100% service.
class FaultMatrix : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultMatrix, StandardStormLosesNoAckedStateAndFullyRecovers) {
  SystemConfig config;
  config.seed = GetParam();
  config.lan.loss_probability = 0.02;
  EdenSystem system(config);
  system.RegisterType(MakeWalType());
  constexpr size_t kNodes = 6;
  system.AddNodes(kNodes);
  // Flaky disks + crashes on nodes 0-2, partition clips the highest station.
  // Node 4 stays clean: it drives the workload and holds the mirror.
  const SimTime storm_end = Seconds(8);
  system.EnableFaults(FaultPlan::StandardStorm(kNodes, 3, Milliseconds(50),
                                               storm_end));

  auto log = system.node(0).CreateObject("wal", Representation{});
  ASSERT_TRUE(log.ok());
  auto object = system.node(0).FindActive(log->name());
  object->policy = CheckpointPolicy{system.node(0).station(),
                                    ReliabilityLevel::kMirrored,
                                    system.node(4).station()};
  ASSERT_TRUE(system.Await(system.node(0).CheckpointObject(log->name())).ok());

  std::vector<uint64_t> acknowledged;
  uint64_t next_entry = 1;
  for (int round = 0; round < 40; round++) {
    uint64_t entry = next_entry++;
    InvokeResult result = system.Await(
        system.node(4).Invoke(*log, "append", InvokeArgs{}.AddU64(entry),
                              InvokeOptions::WithTimeout(Seconds(30))));
    if (result.ok()) {
      acknowledged.push_back(entry);
    }
    system.RunFor(Milliseconds(150));
  }

  // Let the storm blow itself out, then bring everything back.
  while (system.sim().now() < storm_end) {
    system.RunFor(Milliseconds(500));
  }
  for (size_t n = 0; n < kNodes; n++) {
    if (system.node(n).failed()) {
      system.node(n).RestartNode();
    }
  }
  system.RunFor(Seconds(2));

  // 100% eventual completion: with the faults quiet, appends succeed again.
  for (int i = 0; i < 3; i++) {
    uint64_t entry = next_entry++;
    InvokeResult result = system.Await(
        system.node(4).Invoke(*log, "append", InvokeArgs{}.AddU64(entry),
                              InvokeOptions::WithTimeout(Seconds(30))));
    ASSERT_TRUE(result.ok()) << "post-storm append failed (seed " << GetParam()
                             << "): " << result.status;
    acknowledged.push_back(entry);
  }

  InvokeResult final_log = system.Await(
      system.node(4).Invoke(*log, "entries", {},
                            InvokeOptions::WithTimeout(Seconds(30))));
  ASSERT_TRUE(final_log.ok()) << final_log.status;
  std::vector<uint64_t> persisted;
  for (size_t i = 0; i < final_log.results.data.size(); i++) {
    persisted.push_back(final_log.results.U64At(i).value());
  }

  // Every acknowledged append survived; the log never duplicated or
  // reordered an entry.
  size_t cursor = 0;
  for (uint64_t entry : acknowledged) {
    bool found = false;
    for (; cursor < persisted.size(); cursor++) {
      if (persisted[cursor] == entry) {
        found = true;
        cursor++;
        break;
      }
    }
    ASSERT_TRUE(found) << "acknowledged entry " << entry
                       << " missing after the storm (seed " << GetParam()
                       << ")";
  }
  for (size_t i = 1; i < persisted.size(); i++) {
    EXPECT_LT(persisted[i - 1], persisted[i]);
  }

  // The storm actually happened.
  const FaultStats& stats = system.faults()->stats();
  EXPECT_GT(stats.wire_corrupted + stats.wire_duplicated + stats.wire_delayed,
            0u);
  EXPECT_GT(stats.node_failures, 0u);
  EXPECT_EQ(stats.node_failures, stats.node_restarts);
  EXPECT_EQ(stats.partition_epochs, 2u);  // split + heal
}

INSTANTIATE_TEST_SUITE_P(Storms, FaultMatrix,
                         ::testing::Values(11, 23, 42, 71, 97, 131));

// A chaotic run is exactly as reproducible as a clean one: same seed + same
// plan => same injected faults and same final state.
TEST(FaultDeterminism, SameSeedSameStormSameOutcome) {
  auto run = [](uint64_t seed) {
    SystemConfig config;
    config.seed = seed;
    config.lan.loss_probability = 0.02;
    EdenSystem system(config);
    system.RegisterType(MakeCounterType());
    system.AddNodes(4);
    system.EnableFaults(
        FaultPlan::StandardStorm(4, 2, Milliseconds(10), Seconds(3)));
    // Cross-node traffic through the faulty wire, object on a flaky disk.
    auto cap = system.node(0).CreateObject("counter", CounterRep());
    EXPECT_TRUE(cap.ok());
    EXPECT_TRUE(system.Await(system.node(0).CheckpointObject(cap->name())).ok());
    uint64_t last = 0;
    for (int i = 0; i < 25; i++) {
      InvokeResult result = system.Await(
          system.node(3).Invoke(*cap, "increment", InvokeArgs{}.AddU64(1),
                                InvokeOptions::WithTimeout(Seconds(10))));
      if (result.ok()) {
        last = result.results.U64At(0).value_or(last);
      }
      system.RunFor(Milliseconds(100));
    }
    FaultStats stats = system.faults()->stats();
    return std::tuple(last, system.sim().now(), stats.wire_corrupted,
                      stats.wire_duplicated, stats.wire_delayed,
                      stats.disk_write_errors, stats.disk_torn_writes,
                      stats.node_failures);
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the seed genuinely matters
}

// --- Peer health state machine ----------------------------------------------

// Peer health is about a *node* dying under many objects: each object's
// first post-failure attempt burns a timeout against the dead host, and the
// per-peer failure streak is what lets later attempts skip that cost. The
// fixture therefore spreads several counters over node 1 and warms node 0's
// location cache for all of them.
class PeerHealthFixture : public ::testing::Test {
 protected:
  static constexpr int kObjects = 6;

  PeerHealthFixture() {
    system_.RegisterType(MakeCounterType());
    system_.AddNodes(4);
    for (int i = 0; i < kObjects; i++) {
      auto cap = system_.node(1).CreateObject("counter", CounterRep());
      EXPECT_TRUE(cap.ok());
      system_.Await(
          system_.node(1).Invoke(*cap, "increment", InvokeArgs{}.AddU64(9)));
      EXPECT_TRUE(
          system_.Await(system_.node(1).CheckpointObject(cap->name())).ok());
      // Node 0 learns where the object lives (location cache warm-up).
      EXPECT_TRUE(system_.Await(system_.node(0).Invoke(*cap, "read", {})).ok());
      caps_.push_back(*cap);
    }
  }

  // Reads cached objects from node 0 until node 1 crosses the suspicion
  // threshold (or the cache runs out). Returns how many reads it spent.
  int ReadUntilSuspect() {
    const StationId peer = system_.node(1).station();
    int spent = 0;
    while (spent < kObjects - 1 && !system_.node(0).PeerSuspect(peer)) {
      system_.Await(system_.node(0).Invoke(
          caps_[spent++], "read", {}, InvokeOptions::WithTimeout(Seconds(60))));
    }
    return spent;
  }

  EdenSystem system_;
  std::vector<Capability> caps_;
};

TEST_F(PeerHealthFixture, ConsecutiveFailuresMarkPeerSuspectThenProbeRecovers) {
  const StationId peer = system_.node(1).station();
  EXPECT_FALSE(system_.node(0).PeerSuspect(peer));

  // Node 1 goes dark. Attempts against cached locations fail one after
  // another until the peer crosses the suspicion threshold.
  system_.node(1).FailNode();
  ReadUntilSuspect();
  EXPECT_TRUE(system_.node(0).PeerSuspect(peer));
  EXPECT_GE(system_.node(0).PeerConsecutiveFailures(peer), 3);
  EXPECT_EQ(system_.node(0).metrics().counter("kernel.peer.suspects").value(),
            1u);

  // Probes keep walking their backoff ladder while the peer stays dark.
  system_.RunFor(Seconds(5));
  EXPECT_GE(system_.node(0).metrics().counter("kernel.peer.probes").value(),
            1u);
  EXPECT_TRUE(system_.node(0).PeerSuspect(peer));

  // The peer returns; the next probe's transport-level ack clears suspicion
  // without any application traffic.
  system_.node(1).RestartNode();
  system_.RunFor(Seconds(15));
  EXPECT_FALSE(system_.node(0).PeerSuspect(peer));
  EXPECT_EQ(
      system_.node(0).metrics().counter("kernel.peer.recoveries").value(), 1u);

  // Normal traffic resumes and the checkpointed state survived the outage.
  // (Sends abandoned during the outage may still report a few stale failures
  // after recovery; a fresh success resets the streak — so the failure count
  // is checked after it, and it must never have re-crossed the threshold.)
  InvokeResult result = system_.Await(
      system_.node(0).Invoke(caps_[0], "read", {},
                             InvokeOptions::WithTimeout(Seconds(30))));
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_EQ(result.results.U64At(0).value(), 9u);
  EXPECT_FALSE(system_.node(0).PeerSuspect(peer));
  EXPECT_EQ(system_.node(0).PeerConsecutiveFailures(peer), 0);
}

TEST_F(PeerHealthFixture, SuspectPeerFastFailsWithoutWaitingForTimeout) {
  const StationId peer = system_.node(1).station();
  system_.node(1).FailNode();
  int spent = ReadUntilSuspect();
  ASSERT_TRUE(system_.node(0).PeerSuspect(peer));
  ASSERT_LT(spent, kObjects);  // at least one cached location left unspent

  // The next cached location still routes at node 1, but the suspect state
  // refuses the attempt up front instead of burning a full attempt timeout.
  uint64_t fast_fails_before =
      system_.node(0).metrics().counter("kernel.peer.fast_fails").value();
  SimTime before = system_.sim().now();
  InvokeResult result = system_.Await(system_.node(0).Invoke(
      caps_[spent], "read", {}, InvokeOptions::WithTimeout(Seconds(60))));
  EXPECT_FALSE(result.ok());
  // Far quicker than the 2s attempt timeout the earlier reads each paid.
  EXPECT_LT(system_.sim().now() - before, Seconds(2));
  EXPECT_GT(system_.node(0).metrics().counter("kernel.peer.fast_fails").value(),
            fast_fails_before);
}

TEST_F(PeerHealthFixture, PeerHealthCanBeDisabled) {
  SystemConfig config;
  config.kernel.peer_health = false;
  EdenSystem system(config);
  system.RegisterType(MakeCounterType());
  system.AddNodes(2);
  auto cap = system.node(1).CreateObject("counter", CounterRep());
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system.Await(system.node(0).Invoke(*cap, "read", {})).ok());
  system.node(1).FailNode();
  for (int i = 0; i < 4; i++) {
    system.Await(system.node(0).Invoke(
        *cap, "read", {}, InvokeOptions::WithTimeout(Seconds(60))));
  }
  EXPECT_FALSE(system.node(0).PeerSuspect(system.node(1).station()));
  EXPECT_EQ(system.node(0).metrics().counter("kernel.peer.suspects").value(),
            0u);
}

}  // namespace
}  // namespace eden
