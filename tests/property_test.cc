// Property-based tests (parameterized sweeps over seeds, loss rates, sizes
// and concurrency) for the system's core invariants:
//
//   P1  Capability rights are monotone under restriction chains.
//   P2  Invocation execution is exactly-once under frame loss.
//   P3  checkpoint + crash + reincarnate is the identity on representations.
//   P4  The location protocol converges after arbitrary move sequences.
//   P5  Equal seeds produce byte-identical executions.
//   P6  EFS committed histories are serializable (linear version chains).
//   P7  The LAN neither duplicates nor invents frames.
#include <gtest/gtest.h>

#include "src/efs/client.h"
#include "src/efs/file_store.h"
#include "src/kernel/eden_system.h"
#include "src/types/standard_types.h"

namespace eden {
namespace {

// --- P1: rights monotonicity ------------------------------------------------

class RightsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RightsProperty, RestrictionChainsNeverAmplify) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; trial++) {
    Capability cap(ObjectName(1, trial, 0),
                   Rights(static_cast<uint32_t>(rng.NextU64())));
    uint32_t previous = cap.rights().bits();
    for (int step = 0; step < 8; step++) {
      cap = cap.Restrict(Rights(static_cast<uint32_t>(rng.NextU64())));
      uint32_t current = cap.rights().bits();
      // No bit ever appears that was absent before.
      EXPECT_EQ(current & ~previous, 0u);
      previous = current;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RightsProperty,
                         ::testing::Values(1, 17, 255, 9999));

// --- P2: exactly-once execution under loss ----------------------------------

class ExactlyOnceProperty : public ::testing::TestWithParam<double> {};

TEST_P(ExactlyOnceProperty, CounterMatchesSuccessfulInvocations) {
  SystemConfig config;
  config.seed = 1234 + static_cast<uint64_t>(GetParam() * 100);
  config.lan.loss_probability = GetParam();
  EdenSystem system(config);
  RegisterStandardTypes(system);
  system.AddNodes(4);

  auto cap = system.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  constexpr int kCalls = 30;
  int ok_count = 0;
  for (int i = 0; i < kCalls; i++) {
    InvokeResult result =
        system.Await(system.node(1 + i % 3).Invoke(*cap, "increment"));
    if (result.ok()) {
      ok_count++;
    }
  }
  // Quiesce, then read locally (no loss on the final read).
  system.lan().set_loss_probability(0.0);
  InvokeResult read = system.Await(system.node(0).Invoke(*cap, "read"));
  ASSERT_TRUE(read.ok());
  uint64_t value = read.results.U64At(0).value();
  // Every acknowledged increment happened; no increment happened twice. A
  // timed-out increment may or may not have landed, so value is bounded by
  // [ok_count, kCalls].
  EXPECT_GE(value, static_cast<uint64_t>(ok_count));
  EXPECT_LE(value, static_cast<uint64_t>(kCalls));
}

INSTANTIATE_TEST_SUITE_P(LossRates, ExactlyOnceProperty,
                         ::testing::Values(0.0, 0.05, 0.15, 0.3));

// --- P3: checkpoint/reincarnate round trip ----------------------------------

class RoundTripProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(RoundTripProperty, ReincarnationRestoresRepresentationExactly) {
  SystemConfig config;
  config.seed = GetParam();
  EdenSystem system(config);
  RegisterStandardTypes(system);
  system.AddNodes(3);

  // Random representation in a std.data object.
  Rng rng(GetParam() * 31 + 7);
  size_t size = 1 + rng.NextBelow(64 * 1024);
  Bytes content(size);
  for (size_t i = 0; i < size; i++) {
    content[i] = static_cast<uint8_t>(rng.NextU64());
  }

  auto cap = system.node(0).CreateObject("std.data", Representation{});
  ASSERT_TRUE(cap.ok());
  ASSERT_TRUE(system
                  .Await(system.node(1).Invoke(*cap, "put",
                                               InvokeArgs{}.AddBytes(content)))
                  .ok());
  uint64_t digest_before =
      system.node(0).FindActive(cap->name())->core->rep.DigestValue();

  ASSERT_TRUE(system.Await(system.node(1).Invoke(*cap, "checkpoint")).ok());
  ASSERT_TRUE(system.Await(system.node(1).Invoke(*cap, "crash")).ok());
  ASSERT_FALSE(system.node(0).IsActive(cap->name()));

  InvokeResult read = system.Await(system.node(2).Invoke(*cap, "get"));
  ASSERT_TRUE(read.ok()) << read.status;
  EXPECT_EQ(read.results.BytesAt(0).value(), content);
  EXPECT_EQ(system.node(0).FindActive(cap->name())->core->rep.DigestValue(),
            digest_before);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndSizes, RoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- P4: location convergence after move sequences ---------------------------

class ConvergenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConvergenceProperty, ObjectIsAlwaysReachableAfterRandomMoves) {
  SystemConfig config;
  config.seed = GetParam();
  EdenSystem system(config);
  RegisterStandardTypes(system);
  constexpr size_t kNodes = 6;
  system.AddNodes(kNodes);

  auto cap = system.node(0).CreateObject("std.counter", Representation{});
  ASSERT_TRUE(cap.ok());
  Rng rng(GetParam());
  uint64_t expected = 0;
  for (int round = 0; round < 12; round++) {
    // Random move.
    size_t destination = rng.NextBelow(kNodes);
    InvokeResult moved = system.Await(system.node(rng.NextBelow(kNodes))
                                          .Invoke(*cap, "move_to",
                                                  InvokeArgs{}.AddU64(
                                                      system.node(destination)
                                                          .station())));
    EXPECT_TRUE(moved.ok()) << moved.status;
    // Random invoker must reach it (stale caches, forwarding chains and all).
    InvokeResult result =
        system.Await(system.node(rng.NextBelow(kNodes)).Invoke(*cap, "increment"));
    ASSERT_TRUE(result.ok()) << "round " << round << ": " << result.status;
    expected++;
    EXPECT_EQ(result.results.U64At(0).value(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- P5: determinism ----------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismProperty, EqualSeedsProduceIdenticalExecutions) {
  auto run = [](uint64_t seed) {
    SystemConfig config;
    config.seed = seed;
    config.lan.loss_probability = 0.1;
    EdenSystem system(config);
    RegisterStandardTypes(system);
    system.AddNodes(4);
    auto cap = system.node(0).CreateObject("std.counter", Representation{});
    for (int i = 0; i < 20; i++) {
      system.Await(system.node(i % 4).Invoke(*cap, "increment"));
    }
    // Fingerprint: final virtual time + full stats of every node.
    Digest digest;
    digest.Mix(static_cast<uint64_t>(system.sim().now()));
    for (size_t n = 0; n < system.node_count(); n++) {
      const KernelStats& stats = system.node(n).stats();
      digest.Mix(stats.invocations_started);
      digest.Mix(stats.invocations_remote);
      digest.Mix(stats.locate_broadcasts);
      digest.Mix(stats.dispatches);
    }
    digest.Mix(system.lan().stats().frames_sent);
    digest.Mix(system.lan().stats().collisions);
    digest.Mix(system.lan().stats().frames_lost);
    return digest.value();
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty,
                         ::testing::Values(7, 77, 777, 7777));

// --- P6: EFS serializability ----------------------------------------------------

class EfsSerializabilityProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EfsSerializabilityProperty, CommittedHistoryIsLinear) {
  auto [writers, files] = GetParam();
  SystemConfig config;
  config.seed = static_cast<uint64_t>(writers * 100 + files);
  EdenSystem system(config);
  RegisterStandardTypes(system);
  RegisterEfsTypes(system);
  system.AddNodes(4);

  auto store = system.node(0).CreateObject("efs.store", Representation{});
  ASSERT_TRUE(store.ok());
  EfsClient client(system.node(3), {*store});
  for (int f = 0; f < files; f++) {
    ASSERT_TRUE(
        system.Await(client.CreateFile("/f" + std::to_string(f))).ok());
  }

  // Launch concurrent single-file transactions; they race on base versions.
  Rng rng(config.seed);
  std::vector<Future<Status>> commits;
  std::vector<int> target_file;
  for (int w = 0; w < writers; w++) {
    int f = static_cast<int>(rng.NextBelow(files));
    auto txn = client.Begin();
    txn.Write("/f" + std::to_string(f),
              ToBytes("writer " + std::to_string(w)));
    commits.push_back(txn.Commit());
    target_file.push_back(f);
  }
  std::vector<int> committed_per_file(files, 0);
  for (int w = 0; w < writers; w++) {
    Status status = system.Await(std::move(commits[w]));
    if (status.ok()) {
      committed_per_file[target_file[w]]++;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kAborted) << status;
    }
  }
  // Each file's version count equals its number of successful commits: the
  // committed history is a linear chain with no lost or phantom versions.
  for (int f = 0; f < files; f++) {
    auto latest = system.Await(client.Latest("/f" + std::to_string(f)));
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(*latest, static_cast<uint64_t>(committed_per_file[f]))
        << "file " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(WritersAndFiles, EfsSerializabilityProperty,
                         ::testing::Values(std::make_tuple(2, 1),
                                           std::make_tuple(4, 2),
                                           std::make_tuple(8, 2),
                                           std::make_tuple(8, 4)));

// --- P7: LAN frame conservation ---------------------------------------------

class LanConservationProperty : public ::testing::TestWithParam<double> {};

TEST_P(LanConservationProperty, FramesAreNeitherDuplicatedNorInvented) {
  Simulation sim(42);
  LanConfig config;
  config.loss_probability = GetParam();
  Lan lan(sim, config);
  Station* a = lan.AttachStation();
  Station* b = lan.AttachStation();
  uint64_t received = 0;
  b->SetReceiveHandler([&](const Frame&) { received++; });
  constexpr uint64_t kFrames = 200;
  for (uint64_t i = 0; i < kFrames; i++) {
    a->Send(Frame{0, b->id(), Bytes(200)});
  }
  sim.Run();
  const LanStats& stats = lan.stats();
  EXPECT_EQ(stats.frames_sent, kFrames);
  EXPECT_EQ(received, stats.frames_delivered);
  EXPECT_EQ(stats.frames_delivered + stats.frames_lost +
                stats.frames_dropped_partition,
            kFrames);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LanConservationProperty,
                         ::testing::Values(0.0, 0.1, 0.5));

}  // namespace
}  // namespace eden
