// Gates for the always-on telemetry pipeline (DESIGN.md §17): scrapes must
// be bit-identical per seed and across shard layouts, enabling telemetry
// must not perturb the execution it observes (node digests and wire bytes
// unchanged), SLO burn-rate violations must fire with the right class/kind
// and latch over sustained burns, tail-based trace retention must bound span
// memory while keeping the interesting traces, and a seeded chaos storm must
// produce deterministic fault-triggered diagnostic bundles.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault.h"
#include "src/kernel/eden_system.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/timeseries.h"
#include "src/trace/span.h"
#include "src/types/standard_types.h"
#include "src/workload/workload.h"
#include "tests/test_util.h"

namespace eden {
namespace {

// ---------------------------------------------------------------------------
// SeriesBuffer
// ---------------------------------------------------------------------------

TEST(SeriesBuffer, RingKeepsNewestAndSumsWindows) {
  SeriesBuffer series(4);
  EXPECT_EQ(series.size(), 0u);
  EXPECT_EQ(series.SumLast(8), 0.0);
  for (int i = 1; i <= 3; i++) {
    series.Push(i);
  }
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.at(0), 1.0);
  EXPECT_EQ(series.back(), 3.0);
  EXPECT_EQ(series.SumLast(2), 5.0);  // 2 + 3
  // Overflow the ring: 1 and 2 fall out, the newest four remain in order.
  series.Push(4);
  series.Push(5);
  series.Push(6);
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.total(), 6u);
  EXPECT_EQ(series.at(0), 3.0);
  EXPECT_EQ(series.at(3), 6.0);
  EXPECT_EQ(series.back(), 6.0);
  EXPECT_EQ(series.SumLast(4), 18.0);   // 3+4+5+6
  EXPECT_EQ(series.SumLast(100), 18.0); // clamped to what is retained
}

// ---------------------------------------------------------------------------
// Scrape determinism and zero-perturbation
// ---------------------------------------------------------------------------

struct ScenarioResult {
  std::vector<uint64_t> digests;
  uint64_t frames_sent = 0;
  uint64_t frames_delivered = 0;
  uint64_t bytes_on_wire = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t ticks = 0;
  std::string window_json;
  std::vector<std::string> node_series_json;
};

// Six nodes, closed-loop clients everywhere, remote targets on nodes 0 and 4
// so traffic crosses every shard boundary under every tested layout. Every
// invocation carries metrics_class "user" so the per-class series exist.
ScenarioResult RunScenario(uint64_t seed, size_t shards, bool telemetry) {
  SystemConfig config;
  config.seed = seed;
  config.shards = shards;
  config.telemetry.enabled = telemetry;
  config.telemetry.scrape_interval = Milliseconds(5);
  EdenSystem system(config);
  RegisterStandardTypes(system);
  system.AddNodes(6);
  Capability low = *system.node(0).CreateObject("std.counter", Representation{});
  Capability high =
      *system.node(4).CreateObject("std.counter", Representation{});
  WorkFactory factory = [low, high](size_t client, uint64_t seq) {
    WorkItem item{((client + seq) % 2 == 0) ? low : high, "increment",
                  InvokeArgs{}.AddU64(1)};
    item.metrics_class = "user";
    return item;
  };
  WorkloadStats stats = RunClosedLoop(system, {0, 1, 2, 3, 4, 5}, factory,
                                      Milliseconds(60), Microseconds(200));
  ScenarioResult result;
  for (size_t n = 0; n < system.node_count(); n++) {
    result.digests.push_back(system.node(n).digest().value());
  }
  const LanStats& lan = system.lan().stats();
  result.frames_sent = lan.frames_sent;
  result.frames_delivered = lan.frames_delivered;
  result.bytes_on_wire = lan.bytes_on_wire;
  result.completed = stats.completed;
  result.failed = stats.failed;
  if (telemetry) {
    Telemetry* t = system.telemetry();
    result.ticks = t->ticks();
    result.window_json = t->WindowJson(16);
    for (size_t n = 0; n < system.node_count(); n++) {
      JsonWriter series;
      t->NodeSampler(n)->WriteJson(series, 16);
      result.node_series_json.push_back(series.str());
    }
  }
  return result;
}

TEST(Telemetry, ScrapesAreBitIdenticalPerSeed) {
  for (uint64_t seed : {7u, 23u}) {
    ScenarioResult a = RunScenario(seed, 0, true);
    ScenarioResult b = RunScenario(seed, 0, true);
    EXPECT_GT(a.ticks, 0u);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.window_json, b.window_json) << "seed " << seed;
    // The export carries the per-node sections, the system registry (this is
    // an unsharded run) and the cross-node rollup.
    EXPECT_NE(a.window_json.find("\"nodes\""), std::string::npos);
    EXPECT_NE(a.window_json.find("\"system\""), std::string::npos);
    EXPECT_NE(a.window_json.find("\"rollup\""), std::string::npos);
    EXPECT_NE(a.window_json.find("kernel.dispatches.delta"), std::string::npos);
    EXPECT_NE(a.window_json.find("kernel.invoke.latency.class.user.p99_us"),
              std::string::npos);
  }
}

TEST(Telemetry, NodeSeriesIdenticalAcrossShardCounts) {
  const uint64_t seed = 11;
  ScenarioResult oracle = RunScenario(seed, 1, true);
  ASSERT_GT(oracle.ticks, 0u);
  for (size_t shards : {2u, 4u}) {
    ScenarioResult sharded = RunScenario(seed, shards, true);
    EXPECT_EQ(sharded.ticks, oracle.ticks) << shards << " shards";
    ASSERT_EQ(sharded.node_series_json.size(), oracle.node_series_json.size());
    for (size_t n = 0; n < oracle.node_series_json.size(); n++) {
      EXPECT_EQ(sharded.node_series_json[n], oracle.node_series_json[n])
          << "node " << n << " series diverged on " << shards << " shards";
    }
  }
}

TEST(Telemetry, EnablingTelemetryLeavesExecutionUntouched) {
  // Scrape ticks ride a reserved event domain ordered after all same-instant
  // work and consume no simulation randomness, so the observed system must
  // be bit-identical with the pipeline on or off: same per-node message
  // digests, same wire traffic, same workload outcome. Checked in both the
  // single-threaded world and under the parallel sharded engine.
  for (size_t shards : {0u, 2u}) {
    ScenarioResult off = RunScenario(17, shards, false);
    ScenarioResult on = RunScenario(17, shards, true);
    EXPECT_EQ(on.digests, off.digests) << shards << " shards";
    EXPECT_EQ(on.frames_sent, off.frames_sent) << shards << " shards";
    EXPECT_EQ(on.frames_delivered, off.frames_delivered) << shards << " shards";
    EXPECT_EQ(on.bytes_on_wire, off.bytes_on_wire) << shards << " shards";
    EXPECT_EQ(on.completed, off.completed) << shards << " shards";
    EXPECT_EQ(on.failed, off.failed) << shards << " shards";
  }
}

// ---------------------------------------------------------------------------
// SLO burn-rate engine
// ---------------------------------------------------------------------------

// A type whose "fail" operation always errors — drives the error-burn path.
std::shared_ptr<TypeManager> MakeFlakyType() {
  auto type = std::make_shared<TypeManager>("flaky");
  size_t ops = type->AddClass("ops", 4);
  type->AddOperation(OperationSpec{
      .name = "ok",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        (void)ctx;
        co_return InvokeResult::Ok();
      },
      .required_rights = Rights(Rights::kInvoke),
      .invocation_class = ops,
  });
  type->AddOperation(OperationSpec{
      .name = "fail",
      .handler = [](InvokeContext& ctx) -> Task<InvokeResult> {
        (void)ctx;
        co_return InvokeResult::Error(
            Status(StatusCode::kUnavailable, "induced failure"));
      },
      .required_rights = Rights(Rights::kInvoke),
      .invocation_class = ops,
  });
  return type;
}

TEST(TelemetrySlo, LatencyBurnFiresOnceAndDumpsABundle) {
  SystemConfig config;
  config.seed = 5;
  config.telemetry.enabled = true;
  config.telemetry.scrape_interval = Milliseconds(5);
  config.telemetry.window_ticks = 4;
  SloObjective objective;
  objective.metrics_class = "user";
  // Unattainable target: every completed invocation lands over it, so the
  // burn is budget-limited (~1/(1-goal)) and must latch exactly once.
  objective.latency_target = Microseconds(1);
  objective.min_requests = 16;
  config.telemetry.objectives.push_back(objective);
  EdenSystem system(config);
  RegisterStandardTypes(system);
  system.AddNodes(4);
  Capability target =
      *system.node(0).CreateObject("std.counter", Representation{});
  WorkFactory factory = [target](size_t, uint64_t) {
    WorkItem item{target, "increment", InvokeArgs{}.AddU64(1)};
    item.metrics_class = "user";
    return item;
  };
  WorkloadStats stats =
      RunClosedLoop(system, {1, 2, 3}, factory, Milliseconds(200));
  ASSERT_GT(stats.completed, 100u);

  Telemetry* telemetry = system.telemetry();
  ASSERT_NE(telemetry, nullptr);
  ASSERT_FALSE(telemetry->violations().empty());
  const SloViolation& v = telemetry->violations().front();
  EXPECT_EQ(v.metrics_class, "user");
  EXPECT_EQ(v.kind, "latency");
  EXPECT_GE(v.burn, 1.0);
  EXPECT_GE(v.window_requests, 16u);
  EXPECT_GE(v.window_requests, v.window_bad);
  EXPECT_FALSE(v.dominant_phase.empty());
  // The burn stays saturated for the whole run, so the rising-edge latch
  // admits exactly one latency violation.
  size_t latency_violations = 0;
  for (const SloViolation& each : telemetry->violations()) {
    if (each.kind == "latency") {
      latency_violations++;
    }
  }
  EXPECT_EQ(latency_violations, 1u);

  ASSERT_FALSE(telemetry->bundles().empty());
  const DiagnosticBundle& bundle = telemetry->bundles().front();
  EXPECT_EQ(bundle.trigger, "slo:user:latency");
  EXPECT_NE(bundle.json.find("\"violation\""), std::string::npos);
  EXPECT_NE(bundle.json.find("\"dominant_phase\""), std::string::npos);
  EXPECT_NE(bundle.json.find("\"series\""), std::string::npos);

  // Telemetry's own health counters fold into Rollup().
  MetricsRegistry rollup = system.Rollup();
  const Counter* scrapes = rollup.FindCounter("telemetry.scrapes");
  ASSERT_NE(scrapes, nullptr);
  EXPECT_GT(scrapes->value(), 0u);
  const Counter* violations = rollup.FindCounter("telemetry.slo.violations");
  ASSERT_NE(violations, nullptr);
  EXPECT_EQ(violations->value(), telemetry->violations().size());
  const Counter* bundles = rollup.FindCounter("telemetry.bundles");
  ASSERT_NE(bundles, nullptr);
  EXPECT_EQ(bundles->value(), telemetry->bundles().size());
}

TEST(TelemetrySlo, ErrorBurnFiresOnInducedFailures) {
  SystemConfig config;
  config.seed = 9;
  config.telemetry.enabled = true;
  config.telemetry.scrape_interval = Milliseconds(5);
  config.telemetry.window_ticks = 4;
  SloObjective objective;
  objective.metrics_class = "batch";
  // Generous latency target so only the error budget can burn.
  objective.latency_target = Seconds(1);
  objective.max_error_rate = 0.01;
  objective.min_requests = 16;
  config.telemetry.objectives.push_back(objective);
  EdenSystem system(config);
  system.RegisterType(MakeFlakyType());
  system.AddNodes(3);
  Capability target = *system.node(0).CreateObject("flaky", Representation{});
  WorkFactory factory = [target](size_t, uint64_t seq) {
    WorkItem item{target, (seq % 2 == 0) ? "fail" : "ok", InvokeArgs{}};
    item.metrics_class = "batch";
    return item;
  };
  WorkloadStats stats =
      RunClosedLoop(system, {1, 2}, factory, Milliseconds(200));
  ASSERT_GT(stats.failed, 16u);

  Telemetry* telemetry = system.telemetry();
  ASSERT_NE(telemetry, nullptr);
  bool saw_error_violation = false;
  for (const SloViolation& v : telemetry->violations()) {
    if (v.kind == "error") {
      saw_error_violation = true;
      EXPECT_EQ(v.metrics_class, "batch");
      EXPECT_GE(v.burn, 1.0);
      EXPECT_GT(v.window_bad, 0u);
    }
  }
  EXPECT_TRUE(saw_error_violation);
}

// ---------------------------------------------------------------------------
// Flight recorder: tail retention
// ---------------------------------------------------------------------------

TEST(TelemetryTail, RetentionBoundsSpanMemoryAndKeepsTheTail) {
  SpanCollectorConfig trace_config;
  trace_config.tail.enabled = true;
  trace_config.tail.top_p = 0.05;
  trace_config.tail.one_in_n = 8;
  trace_config.tail.warmup = 16;
  SpanCollector spans(trace_config);

  SystemConfig config;
  config.seed = 3;
  EdenSystem system(config);
  system.set_span_collector(&spans);
  RegisterStandardTypes(system);
  system.AddNodes(4);
  Capability target =
      *system.node(0).CreateObject("std.counter", Representation{});
  WorkFactory factory = [target](size_t, uint64_t) {
    return WorkItem{target, "increment", InvokeArgs{}.AddU64(1)};
  };
  WorkloadStats stats =
      RunClosedLoop(system, {1, 2, 3}, factory, Milliseconds(120));
  spans.Flush(system.sim().now());

  const SpanCollectorStats& st = spans.stats();
  ASSERT_GT(stats.completed, 200u);
  EXPECT_GT(st.traces_completed, 200u);
  // Every finalized root trace was either retained or recycled — the policy
  // never loses count — and the steady state recycles the bulk of them.
  EXPECT_EQ(st.traces_retained + st.traces_discarded, st.traces_completed);
  EXPECT_GT(st.traces_retained, 0u);
  EXPECT_GT(st.traces_discarded, st.traces_retained);
  // Bounded span memory: the high-water mark is a small multiple of the
  // retained windows, not of the trace count.
  EXPECT_GT(st.spans_held_high_water, 0u);
  EXPECT_GE(st.spans_held_high_water, spans.spans_held());
  size_t window_bound =
      (trace_config.retain_completed + trace_config.slow_exemplars +
       trace_config.max_live_traces / 4) *
      trace_config.max_spans_per_trace;
  EXPECT_LT(st.spans_held_high_water, window_bound);
  // The e2e histogram stays complete even though most trees are recycled.
  MetricsRegistry rollup = system.Rollup();
  const Counter* retained = rollup.FindCounter("trace.tail.retained");
  ASSERT_NE(retained, nullptr);
  EXPECT_EQ(retained->value(), st.traces_retained);
}

// ---------------------------------------------------------------------------
// Seeded chaos: fault-triggered bundles, deterministically
// ---------------------------------------------------------------------------

struct ChaosResult {
  std::vector<std::string> triggers;
  std::vector<std::string> bundle_json;
  std::vector<std::string> violation_kinds;
  std::vector<std::string> violation_phases;
  uint64_t completed = 0;
};

// The standard fault storm under closed-loop classified traffic, with tail
// retention and SLO objectives armed: the flight recorder must capture
// fault-triggered bundles whose contents are a pure function of the seed.
ChaosResult RunChaosScenario(uint64_t seed) {
  SystemConfig config;
  config.seed = seed;
  config.lan.loss_probability = 0.02;
  config.telemetry.enabled = true;
  config.telemetry.scrape_interval = Milliseconds(5);
  config.telemetry.window_ticks = 4;
  SloObjective objective;
  objective.metrics_class = "user";
  objective.latency_target = Milliseconds(2);
  objective.min_requests = 16;
  config.telemetry.objectives.push_back(objective);

  SpanCollectorConfig trace_config;
  trace_config.tail.enabled = true;
  trace_config.tail.one_in_n = 4;
  trace_config.tail.warmup = 32;
  SpanCollector spans(trace_config);

  EdenSystem system(config);
  system.set_span_collector(&spans);
  system.RegisterType(MakeCounterType());
  constexpr size_t kNodes = 6;
  system.AddNodes(kNodes);
  system.EnableFaults(
      FaultPlan::StandardStorm(kNodes, 3, Milliseconds(50), Seconds(2)));

  Capability target = *system.node(0).CreateObject("counter", CounterRep());
  auto object = system.node(0).FindActive(target.name());
  object->policy = CheckpointPolicy{system.node(0).station(),
                                    ReliabilityLevel::kMirrored,
                                    system.node(4).station()};
  EXPECT_TRUE(
      system.Await(system.node(0).CheckpointObject(target.name())).ok());

  WorkFactory factory = [target](size_t, uint64_t) {
    WorkItem item{target, "increment", InvokeArgs{}.AddU64(1)};
    item.metrics_class = "user";
    return item;
  };
  WorkloadStats stats = RunClosedLoop(system, {3, 4, 5}, factory, Seconds(1),
                                      Microseconds(500), Seconds(5));

  ChaosResult result;
  result.completed = stats.completed;
  Telemetry* telemetry = system.telemetry();
  for (const DiagnosticBundle& bundle : telemetry->bundles()) {
    result.triggers.push_back(bundle.trigger);
    result.bundle_json.push_back(bundle.json);
  }
  for (const SloViolation& v : telemetry->violations()) {
    result.violation_kinds.push_back(v.kind);
    result.violation_phases.push_back(v.dominant_phase);
  }
  return result;
}

TEST(TelemetryChaos, FaultStormProducesDeterministicBundles) {
  ChaosResult a = RunChaosScenario(31);
  ChaosResult b = RunChaosScenario(31);

  // The recorder fired, and at least one bundle was opened by an injected
  // fault (as opposed to an SLO violation).
  ASSERT_FALSE(a.triggers.empty());
  bool fault_triggered = false;
  for (const std::string& trigger : a.triggers) {
    if (trigger.rfind("fault:", 0) == 0) {
      fault_triggered = true;
    }
  }
  EXPECT_TRUE(fault_triggered);

  // Bundles carry the windowed series and the tail-retained traces; under a
  // storm the retained window must include fault-annotated traces.
  bool saw_retained = false;
  bool saw_annotated = false;
  for (const std::string& json : a.bundle_json) {
    if (json.find("\"retained_traces\"") != std::string::npos) {
      saw_retained = true;
    }
    if (json.find("\"annotated\":true") != std::string::npos) {
      saw_annotated = true;
    }
  }
  EXPECT_TRUE(saw_retained);
  EXPECT_TRUE(saw_annotated);

  // Chaos latencies blow the 2ms objective: the SLO engine attributes each
  // violation to a phase learned from the retained traces.
  ASSERT_FALSE(a.violation_kinds.empty());
  for (const std::string& phase : a.violation_phases) {
    EXPECT_FALSE(phase.empty());
  }

  // Same seed, same storm, same bundles — byte for byte.
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.triggers, b.triggers);
  EXPECT_EQ(a.bundle_json, b.bundle_json);
  EXPECT_EQ(a.violation_kinds, b.violation_kinds);
  EXPECT_EQ(a.violation_phases, b.violation_phases);
}

// ---------------------------------------------------------------------------
// Load-aware spread (rebalancer satellite)
// ---------------------------------------------------------------------------

TEST(TelemetrySpread, SpreadByLoadMovesHotWorkWhenEnabled) {
  // Node 1 holds one hot object and node 2 holds many cold ones; the
  // count-based pass would move work *to* node 1, the rate-based pass moves
  // the cold-but-countless node's... nothing: it must instead shed from the
  // hot node. With the flag off the pass must stay count-based.
  for (bool by_load : {false, true}) {
    SystemConfig config;
    config.seed = 13;
    config.telemetry.enabled = true;
    config.telemetry.scrape_interval = Milliseconds(5);
    config.membership.rebalance.spread_gap = 4;
    config.membership.rebalance.spread_by_load = by_load;
    config.membership.rebalance.spread_rate_gap = 32.0;
    EdenSystem system(config);
    RegisterStandardTypes(system);
    system.AddNodes(3);
    Capability hot =
        *system.node(1).CreateObject("std.counter", Representation{});
    for (int k = 0; k < 12; k++) {
      ASSERT_TRUE(
          system.node(2).CreateObject("std.counter", Representation{}).ok());
    }
    system.rebalancer().EnsureRunning();
    WorkFactory factory = [hot](size_t, uint64_t) {
      WorkItem item{hot, "increment", InvokeArgs{}.AddU64(1)};
      item.metrics_class = "user";
      return item;
    };
    RunClosedLoop(system, {0}, factory, Milliseconds(300));
    // Let any spread move that straddles the workload cutoff finish: an
    // object torn down mid-transfer still holds its parked dispatches, and
    // those coroutine frames keep the object alive in a cycle.
    system.sim().RunFor(Milliseconds(100));
    MetricsRegistry rollup = system.Rollup();
    const Counter* by_load_moves =
        rollup.FindCounter("rebalance.spread_moves_by_load");
    uint64_t moves = by_load_moves == nullptr ? 0 : by_load_moves->value();
    if (by_load) {
      EXPECT_GT(moves, 0u) << "rate-ranked spread never engaged";
    } else {
      EXPECT_EQ(moves, 0u) << "flag off must keep the count-based pass";
    }
  }
}

}  // namespace
}  // namespace eden
